#include "digruber/sim/fault_plan.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace digruber::sim {
namespace {

TEST(FaultPlan, ParsesEveryVerb) {
  const auto plan = FaultPlan::parse(
      "# a comment\n"
      "at=120 crash dp=0\n"
      "at=5m restart dp=0\n"
      "at=360 partition islands=0|1,2\n"
      "at=400 heal\n"
      "at=450 degrade link=1:2 latency=3 loss=0.1\n"
      "at=460 degrade dp=0 latency=2\n"
      "at=500 restore link=1:2\n"
      "at=510 restore dp=0\n");
  ASSERT_TRUE(plan.ok()) << plan.error();
  const auto& events = plan.value().events();
  ASSERT_EQ(events.size(), 8u);

  EXPECT_EQ(events[0].kind, FaultKind::kDpCrash);
  EXPECT_EQ(events[0].at, Time::from_seconds(120));
  EXPECT_EQ(events[0].dp, 0u);

  EXPECT_EQ(events[1].kind, FaultKind::kDpRestart);
  EXPECT_EQ(events[1].at, Time::from_seconds(300));  // 5m suffix

  EXPECT_EQ(events[2].kind, FaultKind::kPartition);
  ASSERT_EQ(events[2].islands.size(), 2u);
  EXPECT_EQ(events[2].islands[0], (std::vector<std::size_t>{0}));
  EXPECT_EQ(events[2].islands[1], (std::vector<std::size_t>{1, 2}));

  EXPECT_EQ(events[3].kind, FaultKind::kHeal);

  EXPECT_EQ(events[4].kind, FaultKind::kLinkDegrade);
  EXPECT_EQ(events[4].dp, 1u);
  EXPECT_EQ(events[4].peer, 2u);
  EXPECT_FALSE(events[4].all_peers);
  EXPECT_DOUBLE_EQ(events[4].latency_factor, 3.0);
  EXPECT_DOUBLE_EQ(events[4].extra_loss, 0.1);

  EXPECT_EQ(events[5].kind, FaultKind::kLinkDegrade);
  EXPECT_TRUE(events[5].all_peers);
  EXPECT_DOUBLE_EQ(events[5].latency_factor, 2.0);
  EXPECT_DOUBLE_EQ(events[5].extra_loss, 0.0);

  EXPECT_EQ(events[6].kind, FaultKind::kLinkRestore);
  EXPECT_EQ(events[7].kind, FaultKind::kLinkRestore);
  EXPECT_TRUE(events[7].all_peers);
}

TEST(FaultPlan, ParsesChurnVerbs) {
  const auto plan = FaultPlan::parse(
      "at=100 join\n"
      "at=200 leave dp=1\n");
  ASSERT_TRUE(plan.ok()) << plan.error();
  const auto& events = plan.value().events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind, FaultKind::kDpJoin);
  EXPECT_EQ(events[0].at, Time::from_seconds(100));
  EXPECT_EQ(events[1].kind, FaultKind::kDpLeave);
  EXPECT_EQ(events[1].dp, 1u);

  FaultPlan built;
  built.join(Time::from_seconds(100)).leave(Time::from_seconds(200), 1);
  EXPECT_EQ(plan.value(), built);

  // `leave` names a decision point; `join` never does (the harness assigns
  // the next free deployment index in plan order).
  EXPECT_FALSE(FaultPlan::parse("at=10 leave").ok());
}

TEST(FaultPlan, ParsesPartitionToleranceVerbs) {
  const auto plan = FaultPlan::parse(
      "at=100 partition islands=0|1,2 clients=split\n"
      "at=200 oneway from=0 to=2\n"
      "at=250 oneway from=1\n"
      "at=300 healoneway from=0 to=2\n"
      "at=320 healoneway from=1\n"
      "at=400 corrupt rate=0.05\n"
      "at=500 corrupt rate=0\n");
  ASSERT_TRUE(plan.ok()) << plan.error();
  const auto& events = plan.value().events();
  ASSERT_EQ(events.size(), 7u);

  EXPECT_EQ(events[0].kind, FaultKind::kPartition);
  EXPECT_TRUE(events[0].split_clients);

  EXPECT_EQ(events[1].kind, FaultKind::kOneWayPartition);
  EXPECT_EQ(events[1].dp, 0u);
  EXPECT_EQ(events[1].peer, 2u);
  EXPECT_FALSE(events[1].all_peers);

  EXPECT_EQ(events[2].kind, FaultKind::kOneWayPartition);
  EXPECT_EQ(events[2].dp, 1u);
  EXPECT_TRUE(events[2].all_peers);

  EXPECT_EQ(events[3].kind, FaultKind::kOneWayHeal);
  EXPECT_EQ(events[3].peer, 2u);
  EXPECT_EQ(events[4].kind, FaultKind::kOneWayHeal);
  EXPECT_TRUE(events[4].all_peers);

  EXPECT_EQ(events[5].kind, FaultKind::kCorrupt);
  EXPECT_DOUBLE_EQ(events[5].corrupt_rate, 0.05);
  EXPECT_EQ(events[6].kind, FaultKind::kCorrupt);
  EXPECT_DOUBLE_EQ(events[6].corrupt_rate, 0.0);

  FaultPlan built;
  built.partition(Time::from_seconds(100), {{0}, {1, 2}}, /*split_clients=*/true)
      .oneway(Time::from_seconds(200), 0, 2)
      .oneway_all(Time::from_seconds(250), 1)
      .heal_oneway(Time::from_seconds(300), 0, 2)
      .heal_oneway_all(Time::from_seconds(320), 1)
      .corrupt(Time::from_seconds(400), 0.05)
      .corrupt(Time::from_seconds(500), 0.0);
  EXPECT_EQ(plan.value(), built);

  EXPECT_FALSE(FaultPlan::parse("at=10 oneway to=1").ok());
  EXPECT_FALSE(FaultPlan::parse("at=10 oneway from=1 to=1").ok());
  EXPECT_FALSE(FaultPlan::parse("at=10 corrupt rate=1.5").ok());
  EXPECT_FALSE(FaultPlan::parse("at=10 partition islands=0|1 clients=keep").ok());
}

TEST(FaultPlanRandom, PartitionToleranceFaultsAreOptIn) {
  // allow_oneway_partitions / allow_corruption / split_clients_in_partitions
  // default to false: pre-existing chaos seeds replay byte-identically.
  RandomFaultOptions options;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const FaultPlan plan = FaultPlan::random(seed, options);
    for (const FaultEvent& event : plan.events()) {
      EXPECT_NE(event.kind, FaultKind::kOneWayPartition) << "seed " << seed;
      EXPECT_NE(event.kind, FaultKind::kCorrupt) << "seed " << seed;
      EXPECT_FALSE(event.split_clients) << "seed " << seed;
    }
  }
}

TEST(FaultPlanRandom, OneWayAndCorruptionEpisodesAlwaysHeal) {
  RandomFaultOptions options;
  options.n_dps = 3;
  options.episodes = 8;
  options.allow_oneway_partitions = true;
  options.allow_corruption = true;
  options.split_clients_in_partitions = true;
  bool saw_oneway = false, saw_corrupt = false;
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    const FaultPlan plan = FaultPlan::random(seed, options);
    EXPECT_EQ(plan, FaultPlan::random(seed, options)) << "seed " << seed;
    int oneway_open = 0;
    double corrupt_rate = 0.0;
    for (const FaultEvent& event : plan.events()) {
      switch (event.kind) {
        case FaultKind::kOneWayPartition:
          saw_oneway = true;
          ++oneway_open;
          break;
        case FaultKind::kOneWayHeal:
          --oneway_open;
          break;
        case FaultKind::kHeal:
          // A full heal clears directed blocks too.
          oneway_open = 0;
          break;
        case FaultKind::kCorrupt:
          if (event.corrupt_rate > 0.0) saw_corrupt = true;
          corrupt_rate = event.corrupt_rate;
          break;
        default:
          break;
      }
    }
    EXPECT_EQ(oneway_open, 0) << "unhealed one-way partition, seed " << seed;
    EXPECT_DOUBLE_EQ(corrupt_rate, 0.0)
        << "corruption left running, seed " << seed;
  }
  EXPECT_TRUE(saw_oneway);
  EXPECT_TRUE(saw_corrupt);
}

TEST(FaultPlan, JoinCountAndMaxDpIndexCoverChurn) {
  FaultPlan plan;
  EXPECT_EQ(plan.join_count(), 0u);
  plan.join(Time::from_seconds(10)).join(Time::from_seconds(20));
  EXPECT_EQ(plan.join_count(), 2u);
  // Joins carry no index and must not widen the deployment-bound check...
  EXPECT_EQ(plan.max_dp_index(), 0u);
  // ...while a leave's target does.
  plan.leave(Time::from_seconds(30), 5);
  EXPECT_EQ(plan.max_dp_index(), 5u);
}

TEST(FaultPlan, SemicolonSeparatedSingleLine) {
  const auto plan = FaultPlan::parse("at=10 crash dp=1; at=20 restart dp=1");
  ASSERT_TRUE(plan.ok()) << plan.error();
  EXPECT_EQ(plan.value().size(), 2u);
}

TEST(FaultPlan, ParseMatchesBuilder) {
  const auto parsed = FaultPlan::parse(
      "at=120 crash dp=0\n"
      "at=300 restart dp=0\n"
      "at=360 partition islands=0|1,2\n"
      "at=400 heal\n");
  ASSERT_TRUE(parsed.ok());

  FaultPlan built;
  built.crash(Time::from_seconds(120), 0)
      .restart(Time::from_seconds(300), 0)
      .partition(Time::from_seconds(360), {{0}, {1, 2}})
      .heal(Time::from_seconds(400));
  EXPECT_EQ(parsed.value(), built);
}

TEST(FaultPlan, RejectsMalformedLinesWithLineNumbers) {
  const char* bad[] = {
      "crash dp=0",                       // missing at=
      "at=nope crash dp=0",               // bad time
      "at=10 crash",                      // missing dp
      "at=10 partition islands=0",        // single island
      "at=10 partition islands=0|x",      // bad index
      "at=10 degrade latency=2",          // no target
      "at=10 degrade link=1:1",           // self link
      "at=10 degrade link=1:2 latency=0.5",  // latency < 1
      "at=10 degrade link=1:2 loss=1.5",  // loss > 1
      "at=10 explode dp=0",               // unknown verb
  };
  for (const char* text : bad) {
    const auto plan = FaultPlan::parse(text);
    EXPECT_FALSE(plan.ok()) << "accepted: " << text;
    if (!plan.ok()) {
      EXPECT_NE(plan.error().find("fault plan line 1"), std::string::npos)
          << plan.error();
    }
  }
}

TEST(FaultPlan, EventsSortedByTimeStably) {
  FaultPlan plan;
  plan.heal(Time::from_seconds(50));
  plan.crash(Time::from_seconds(10), 2);
  plan.restart(Time::from_seconds(50), 2);  // same instant as heal: after it
  plan.crash(Time::from_seconds(5), 1);
  const auto& events = plan.events();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0].dp, 1u);
  EXPECT_EQ(events[1].dp, 2u);
  EXPECT_EQ(events[2].kind, FaultKind::kHeal);
  EXPECT_EQ(events[3].kind, FaultKind::kDpRestart);
}

TEST(FaultPlan, MaxDpIndexCoversAllEventShapes) {
  FaultPlan plan;
  EXPECT_EQ(plan.max_dp_index(), 0u);
  plan.crash(Time::from_seconds(1), 3);
  EXPECT_EQ(plan.max_dp_index(), 3u);
  plan.degrade_link(Time::from_seconds(2), 1, 7, 2.0, 0.0);
  EXPECT_EQ(plan.max_dp_index(), 7u);
  plan.partition(Time::from_seconds(3), {{0, 9}, {4}});
  EXPECT_EQ(plan.max_dp_index(), 9u);
}

TEST(FaultPlan, ArmFiresEventsAtTheirInstants) {
  FaultPlan plan;
  plan.crash(Time::from_seconds(10), 0).restart(Time::from_seconds(20), 0);

  Simulation sim;
  std::vector<std::pair<double, FaultKind>> fired;
  plan.arm(sim, [&](const FaultEvent& event) {
    fired.emplace_back(sim.now().to_seconds(), event.kind);
  });
  sim.run();
  ASSERT_EQ(fired.size(), 2u);
  EXPECT_DOUBLE_EQ(fired[0].first, 10.0);
  EXPECT_EQ(fired[0].second, FaultKind::kDpCrash);
  EXPECT_DOUBLE_EQ(fired[1].first, 20.0);
  EXPECT_EQ(fired[1].second, FaultKind::kDpRestart);
}

// ---------------------------------------------------------------------------
// Random plans (the chaos harness's schedule generator).

TEST(FaultPlanRandom, SameSeedSamePlanDifferentSeedDiffers) {
  RandomFaultOptions options;
  const FaultPlan a = FaultPlan::random(42, options);
  const FaultPlan b = FaultPlan::random(42, options);
  EXPECT_EQ(a, b);
  // With several episodes the odds of a seed collision are negligible; a
  // handful of alternative seeds must produce at least one different plan.
  bool any_differ = false;
  for (std::uint64_t seed = 43; seed < 48; ++seed) {
    if (!(FaultPlan::random(seed, options) == a)) any_differ = true;
  }
  EXPECT_TRUE(any_differ);
}

TEST(FaultPlanRandom, EventsStayInsideTheSchedulingWindow) {
  RandomFaultOptions options;
  options.horizon = Duration::minutes(10);
  const Time lo = Time::zero() + options.horizon * 0.1;
  const Time hi = Time::zero() + options.horizon * 0.9;
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    const FaultPlan plan = FaultPlan::random(seed, options);
    for (const FaultEvent& event : plan.events()) {
      EXPECT_GE(event.at, lo) << "seed " << seed;
      EXPECT_LE(event.at, hi) << "seed " << seed;
    }
  }
}

TEST(FaultPlanRandom, EveryFaultHealsAndIndicesFitDeployment) {
  RandomFaultOptions options;
  options.n_dps = 4;
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    const FaultPlan plan = FaultPlan::random(seed, options);
    EXPECT_LT(plan.max_dp_index(), options.n_dps) << "seed " << seed;
    // Matched pairs: replaying the schedule must leave nothing down,
    // partitioned, or degraded at the end.
    std::vector<int> down(options.n_dps, 0);
    std::vector<int> degraded(options.n_dps, 0);
    int partitions = 0;
    for (const FaultEvent& event : plan.events()) {
      switch (event.kind) {
        case FaultKind::kDpCrash:
          EXPECT_EQ(down[event.dp], 0) << "seed " << seed << ": double crash";
          down[event.dp] = 1;
          break;
        case FaultKind::kDpRestart:
          EXPECT_EQ(down[event.dp], 1) << "seed " << seed << ": stray restart";
          down[event.dp] = 0;
          break;
        case FaultKind::kPartition:
          ++partitions;
          break;
        case FaultKind::kHeal:
          EXPECT_GT(partitions, 0) << "seed " << seed << ": stray heal";
          --partitions;
          break;
        case FaultKind::kLinkDegrade:
          EXPECT_EQ(degraded[event.dp], 0) << "seed " << seed;
          degraded[event.dp] = 1;
          break;
        case FaultKind::kLinkRestore:
          EXPECT_EQ(degraded[event.dp], 1) << "seed " << seed;
          degraded[event.dp] = 0;
          break;
        case FaultKind::kDpJoin:
        case FaultKind::kDpLeave:
          FAIL() << "seed " << seed << ": churn events without opt-in";
          break;
      }
    }
    EXPECT_EQ(partitions, 0) << "seed " << seed;
    for (std::size_t d = 0; d < options.n_dps; ++d) {
      EXPECT_EQ(down[d], 0) << "seed " << seed << " dp" << d;
      EXPECT_EQ(degraded[d], 0) << "seed " << seed << " dp" << d;
    }
  }
}

TEST(FaultPlanRandom, KeepOneAliveNeverCrashesWholeMesh) {
  RandomFaultOptions options;
  options.n_dps = 2;  // tightest case: any two overlapping crashes kill all
  options.episodes = 8;
  options.allow_partitions = false;
  options.allow_degrades = false;
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    const FaultPlan plan = FaultPlan::random(seed, options);
    int down = 0;
    for (const FaultEvent& event : plan.events()) {
      if (event.kind == FaultKind::kDpCrash) ++down;
      if (event.kind == FaultKind::kDpRestart) --down;
      EXPECT_LT(down, int(options.n_dps)) << "seed " << seed;
    }
  }
}

TEST(FaultPlanRandom, HonorsKindAllowFlags) {
  RandomFaultOptions options;
  options.allow_crashes = false;
  options.allow_degrades = false;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const FaultPlan plan = FaultPlan::random(seed, options);
    for (const FaultEvent& event : plan.events()) {
      EXPECT_TRUE(event.kind == FaultKind::kPartition ||
                  event.kind == FaultKind::kHeal)
          << "seed " << seed;
    }
  }
}

TEST(FaultPlanRandom, ChurnIsOptInSoDefaultSchedulesStayByteIdentical) {
  // allow_joins / allow_leaves default to false: the kind list (and hence
  // every rng draw) is unchanged, so pre-churn chaos seeds replay exactly.
  RandomFaultOptions options;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const FaultPlan plan = FaultPlan::random(seed, options);
    for (const FaultEvent& event : plan.events()) {
      EXPECT_NE(event.kind, FaultKind::kDpJoin) << "seed " << seed;
      EXPECT_NE(event.kind, FaultKind::kDpLeave) << "seed " << seed;
    }
  }
}

TEST(FaultPlanRandom, ChurnSchedulesAreDeterministicAndWellFormed) {
  RandomFaultOptions options;
  options.n_dps = 3;
  options.episodes = 6;
  options.allow_joins = true;
  options.allow_leaves = true;
  bool saw_join = false, saw_leave = false;
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    const FaultPlan plan = FaultPlan::random(seed, options);
    EXPECT_EQ(plan, FaultPlan::random(seed, options)) << "seed " << seed;
    // A left decision point is gone for good: never crashed, restarted, or
    // left again afterwards — and leaves count as down for keep_one_alive.
    std::vector<int> left(options.n_dps, 0);
    int down = 0;
    for (const FaultEvent& event : plan.events()) {
      switch (event.kind) {
        case FaultKind::kDpJoin:
          saw_join = true;
          break;
        case FaultKind::kDpLeave:
          saw_leave = true;
          EXPECT_EQ(left[event.dp], 0) << "seed " << seed << ": double leave";
          left[event.dp] = 1;
          ++down;
          break;
        case FaultKind::kDpCrash:
          EXPECT_EQ(left[event.dp], 0) << "seed " << seed
                                       << ": crash of a departed dp";
          ++down;
          break;
        case FaultKind::kDpRestart:
          EXPECT_EQ(left[event.dp], 0) << "seed " << seed
                                       << ": restart of a departed dp";
          --down;
          break;
        default:
          break;
      }
      EXPECT_LT(down, int(options.n_dps)) << "seed " << seed;
    }
  }
  EXPECT_TRUE(saw_join);
  EXPECT_TRUE(saw_leave);
}

TEST(FaultPlan, DescribeMentionsEveryEvent) {
  FaultPlan plan;
  plan.crash(Time::from_seconds(10), 0);
  plan.partition(Time::from_seconds(20), {{0}, {1, 2}});
  plan.join(Time::from_seconds(30));
  plan.leave(Time::from_seconds(40), 2);
  const std::string text = plan.describe();
  EXPECT_NE(text.find("crash dp0"), std::string::npos);
  EXPECT_NE(text.find("partition dp0 | dp1,dp2"), std::string::npos);
  EXPECT_NE(text.find("join"), std::string::npos);
  EXPECT_NE(text.find("leave dp2"), std::string::npos);
}

}  // namespace
}  // namespace digruber::sim
