#include "digruber/grubsim/grubsim.hpp"

#include <gtest/gtest.h>

namespace digruber::grubsim {
namespace {

/// Synthetic trace: `rate` queries per second for `duration_s` seconds.
workload::TraceLog uniform_trace(double rate, double duration_s) {
  workload::TraceLog log;
  const double step = 1.0 / rate;
  std::uint64_t i = 0;
  for (double t = 0; t < duration_s; t += step, ++i) {
    workload::QueryTrace q;
    q.client = ClientId(i % 50);
    q.issued = sim::Time::from_seconds(t);
    q.handled = true;
    log.add(q);
  }
  return log;
}

TEST(GrubSim, UnderloadedNeedsNoExtraDps) {
  GrubSimConfig config;
  config.initial_dps = 2;
  config.dp_capacity_qps = 2.0;  // 4 q/s total vs 1 q/s offered
  const GrubSimResult result = run_grubsim(uniform_trace(1.0, 1800), config);
  EXPECT_EQ(result.added_dps, 0);
  EXPECT_EQ(result.total_dps(), 2);
  EXPECT_EQ(result.overload_events, 0u);
  EXPECT_LT(result.avg_response_s, config.response_threshold_s);
  EXPECT_EQ(result.queries_replayed, 1800u);
}

TEST(GrubSim, OverloadTriggersProvisioning) {
  GrubSimConfig config;
  config.initial_dps = 1;
  config.dp_capacity_qps = 2.0;
  config.response_threshold_s = 10.0;
  config.overload_sustain_s = 60.0;
  // 8 q/s against 2 q/s capacity: backlog explodes until DPs are added.
  const GrubSimResult result = run_grubsim(uniform_trace(8.0, 1800), config);
  EXPECT_GT(result.added_dps, 0);
  EXPECT_GT(result.overload_events, 0u);
  // Enough DPs to carry 8 q/s: at least 4 total.
  EXPECT_GE(result.total_dps(), 4);
  // But the controller should not wildly over-provision.
  EXPECT_LE(result.total_dps(), 8);
}

TEST(GrubSim, MoreInitialDpsNeedFewerAdditions) {
  GrubSimConfig config;
  config.dp_capacity_qps = 2.0;
  const workload::TraceLog trace = uniform_trace(6.0, 1800);

  config.initial_dps = 1;
  const int added_from_1 = run_grubsim(trace, config).added_dps;
  config.initial_dps = 3;
  const int added_from_3 = run_grubsim(trace, config).added_dps;
  EXPECT_GT(added_from_1, added_from_3);

  // Totals converge to roughly the same requirement (paper Table 3).
  config.initial_dps = 1;
  const int total_1 = run_grubsim(trace, config).total_dps();
  config.initial_dps = 3;
  const int total_3 = run_grubsim(trace, config).total_dps();
  EXPECT_GE(total_1, total_3);
  EXPECT_LE(total_1 - total_3, 4);
}

TEST(GrubSim, ProvisionDelayDefersCapacity) {
  GrubSimConfig fast;
  fast.initial_dps = 1;
  fast.dp_capacity_qps = 2.0;
  fast.provision_delay_s = 0.0;
  GrubSimConfig slow = fast;
  slow.provision_delay_s = 600.0;
  const workload::TraceLog trace = uniform_trace(8.0, 1800);
  const GrubSimResult r_fast = run_grubsim(trace, fast);
  const GrubSimResult r_slow = run_grubsim(trace, slow);
  EXPECT_GE(r_slow.max_response_s, r_fast.max_response_s);
}

TEST(GrubSim, EmptyTrace) {
  GrubSimConfig config;
  const GrubSimResult result = run_grubsim(workload::TraceLog{}, config);
  EXPECT_EQ(result.queries_replayed, 0u);
  EXPECT_EQ(result.added_dps, 0);
  EXPECT_DOUBLE_EQ(result.avg_response_s, 0.0);
}

TEST(GrubSim, UnsortedTraceHandled) {
  workload::TraceLog log;
  for (double t : {100.0, 5.0, 50.0, 1.0}) {
    workload::QueryTrace q;
    q.issued = sim::Time::from_seconds(t);
    log.add(q);
  }
  GrubSimConfig config;
  const GrubSimResult result = run_grubsim(log, config);
  EXPECT_EQ(result.queries_replayed, 4u);
  EXPECT_GE(result.avg_response_s, 0.0);
}

TEST(GrubSim, ProvisionTimesRecorded) {
  GrubSimConfig config;
  config.initial_dps = 1;
  config.dp_capacity_qps = 1.0;
  config.overload_sustain_s = 30.0;
  const GrubSimResult result = run_grubsim(uniform_trace(5.0, 600), config);
  ASSERT_EQ(result.provision_times_s.size(), std::size_t(result.added_dps));
  for (std::size_t i = 1; i < result.provision_times_s.size(); ++i) {
    EXPECT_GE(result.provision_times_s[i], result.provision_times_s[i - 1]);
  }
}

TEST(GrubSim, OverlayOverheadChargesCapacity) {
  // Cost 0 (the default) must leave legacy replays untouched.
  GrubSimConfig legacy;
  legacy.initial_dps = 4;
  legacy.dp_capacity_qps = 2.0;
  const workload::TraceLog trace = uniform_trace(4.0, 1800);
  const GrubSimResult base = run_grubsim(trace, legacy);
  EXPECT_DOUBLE_EQ(base.overlay_overhead_fraction, 0.0);

  // Mesh overhead grows with n: at 4 points each one pays for 2*n*(n-1)/n
  // = 6 messages per 180 s round, each worth 5 query-equivalents against
  // a 2 q/s budget -> 6 * 5 / 180 / 2 ~ 8.3% of capacity.
  GrubSimConfig mesh = legacy;
  mesh.exchange_cost_queries = 5.0;
  const GrubSimResult meshed = run_grubsim(trace, mesh);
  EXPECT_NEAR(meshed.overlay_overhead_fraction, 6.0 * 5.0 / 180.0 / 2.0, 1e-9);
  EXPECT_GE(meshed.avg_response_s, base.avg_response_s);

  // The same cost under a spanning tree charges 2*2*(n-1)/n messages per
  // point per round — cheaper than mesh, and the gap widens with n.
  GrubSimConfig tree = mesh;
  tree.overlay.kind = overlay::Kind::kTree;
  const GrubSimResult treed = run_grubsim(trace, tree);
  EXPECT_LT(treed.overlay_overhead_fraction, meshed.overlay_overhead_fraction);
  EXPECT_NEAR(treed.overlay_overhead_fraction,
              (2.0 * 2.0 * 3.0 / 4.0) * 5.0 / 180.0 / 2.0, 1e-9);

  // A pathological overlay cost clamps at 99%, never a dead point.
  GrubSimConfig absurd = mesh;
  absurd.exchange_cost_queries = 1e9;
  EXPECT_DOUBLE_EQ(run_grubsim(trace, absurd).overlay_overhead_fraction, 0.99);
}

}  // namespace
}  // namespace digruber::grubsim
