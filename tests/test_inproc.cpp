// Integration: the DI-GRUBER wire protocol served over the real
// multi-threaded transport. The same frames and message structs as the
// simulated stack, exercised under true concurrency (CP.1: assume code
// runs multi-threaded).
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <thread>
#include <vector>

#include "digruber/digruber/protocol.hpp"
#include "digruber/gruber/engine.hpp"
#include "digruber/gruber/selectors.hpp"
#include "digruber/net/inproc_transport.hpp"
#include "digruber/net/sync_rpc.hpp"

namespace digruber {
namespace {

using namespace std::chrono_literals;
using ::digruber::digruber::Ack;
using ::digruber::digruber::GetSiteLoadsReply;
using ::digruber::digruber::GetSiteLoadsRequest;
using ::digruber::digruber::Method;
using ::digruber::digruber::ReportSelectionRequest;

/// A thread-safe decision-point core: the GRUBER engine behind a mutex,
/// exposed through the same protocol methods as the simulated service.
class ThreadedDecisionPoint {
 public:
  ThreadedDecisionPoint(net::Transport& transport, const grid::VoCatalog& catalog,
                        const usla::AllocationTree& tree)
      : engine_(catalog, tree), service_(transport) {
    service_.register_typed<GetSiteLoadsRequest, GetSiteLoadsReply>(
        Method::kGetSiteLoads,
        [this](const GetSiteLoadsRequest& request, NodeId) {
          const std::scoped_lock lock(mutex_);
          grid::Job probe;
          probe.id = request.job;
          probe.vo = request.vo;
          probe.group = request.group;
          probe.user = request.user;
          probe.cpus = request.cpus;
          GetSiteLoadsReply reply;
          reply.candidates = engine_.candidates(probe, sim::Time::zero());
          return reply;
        });
    service_.register_typed<ReportSelectionRequest, Ack>(
        Method::kReportSelection,
        [this](const ReportSelectionRequest& request, NodeId) {
          const std::scoped_lock lock(mutex_);
          gruber::DispatchRecord record;
          record.origin = DpId(0);
          record.seq = ++seq_;
          record.site = request.site;
          record.vo = request.vo;
          record.group = request.group;
          record.user = request.user;
          record.cpus = request.cpus;
          record.when = sim::Time::zero();
          record.est_runtime = request.est_runtime;
          engine_.record(record);
          return Ack{};
        });
  }

  [[nodiscard]] NodeId node() const { return service_.node(); }

  void bootstrap(const std::vector<grid::SiteSnapshot>& snapshots) {
    const std::scoped_lock lock(mutex_);
    engine_.view().bootstrap(snapshots);
  }

  [[nodiscard]] std::uint64_t selections() const {
    const std::scoped_lock lock(mutex_);
    return seq_;
  }

 private:
  mutable std::mutex mutex_;
  gruber::GruberEngine engine_;
  std::uint64_t seq_ = 0;
  net::SyncService service_;
};

std::vector<grid::SiteSnapshot> make_snapshots(int n) {
  std::vector<grid::SiteSnapshot> out;
  for (int i = 0; i < n; ++i) {
    grid::SiteSnapshot s;
    s.site = SiteId(std::uint64_t(i));
    s.total_cpus = 1000;
    s.free_cpus = 1000;
    out.push_back(s);
  }
  return out;
}

struct Fixture {
  net::InProcTransport transport;
  grid::VoCatalog catalog = grid::VoCatalog::uniform(2, 2);
  usla::AllocationTree tree = usla::AllocationTree::build({}, catalog).value();
  ThreadedDecisionPoint dp{transport, catalog, tree};

  Fixture() { dp.bootstrap(make_snapshots(8)); }

  GetSiteLoadsRequest request(std::uint64_t job) {
    GetSiteLoadsRequest r;
    r.job = JobId(job);
    r.vo = VoId(job % 2);
    r.group = GroupId((job % 2) * 2);
    r.user = UserId((job % 2) * 2);
    r.cpus = 1;
    return r;
  }
};

TEST(InProc, SingleQueryRoundtrip) {
  Fixture f;
  net::SyncClient client(f.transport);
  const auto reply = client.call<GetSiteLoadsRequest, GetSiteLoadsReply>(
      f.dp.node(), Method::kGetSiteLoads, f.request(1), 2000ms);
  ASSERT_TRUE(reply.ok()) << reply.error();
  EXPECT_EQ(reply.value().candidates.size(), 8u);
}

TEST(InProc, FullBrokeringQueryAcrossThreads) {
  Fixture f;
  constexpr int kThreads = 4;
  constexpr int kQueriesPerThread = 50;
  std::atomic<int> handled{0};
  std::vector<std::jthread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&f, &handled, t] {
      net::SyncClient client(f.transport);
      gruber::LeastUsedSelector selector;
      for (int q = 0; q < kQueriesPerThread; ++q) {
        const std::uint64_t job_id = std::uint64_t(t) * 1000 + std::uint64_t(q);
        const auto reply = client.call<GetSiteLoadsRequest, GetSiteLoadsReply>(
            f.dp.node(), Method::kGetSiteLoads, f.request(job_id), 5000ms);
        ASSERT_TRUE(reply.ok()) << reply.error();

        grid::Job job;
        job.id = JobId(job_id);
        job.vo = VoId(job_id % 2);
        job.cpus = 1;
        job.runtime = sim::Duration::seconds(60);
        const auto site = selector.select(reply.value().candidates, job);
        ASSERT_TRUE(site.has_value());

        ReportSelectionRequest report;
        report.job = job.id;
        report.site = *site;
        report.vo = job.vo;
        report.group = GroupId(0);
        report.user = UserId(0);
        report.cpus = 1;
        report.est_runtime = sim::Duration::seconds(60);
        const auto ack = client.call<ReportSelectionRequest, Ack>(
            f.dp.node(), Method::kReportSelection, report, 5000ms);
        ASSERT_TRUE(ack.ok()) << ack.error();
        handled.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  workers.clear();  // join
  EXPECT_EQ(handled.load(), kThreads * kQueriesPerThread);
  EXPECT_EQ(f.dp.selections(), std::uint64_t(kThreads * kQueriesPerThread));
}

TEST(InProc, SelectionsVisibleToSubsequentQueries) {
  Fixture f;
  net::SyncClient client(f.transport);

  ReportSelectionRequest report;
  report.job = JobId(1);
  report.site = SiteId(0);
  report.vo = VoId(0);
  report.group = GroupId(0);
  report.user = UserId(0);
  report.cpus = 400;
  report.est_runtime = sim::Duration::hours(1);
  const auto ack = client.call<ReportSelectionRequest, Ack>(
      f.dp.node(), Method::kReportSelection, report, 2000ms);
  ASSERT_TRUE(ack.ok());

  const auto reply = client.call<GetSiteLoadsRequest, GetSiteLoadsReply>(
      f.dp.node(), Method::kGetSiteLoads, f.request(2), 2000ms);
  ASSERT_TRUE(reply.ok());
  // Site 0's estimate reflects the 400-CPU dispatch.
  for (const auto& load : reply.value().candidates) {
    if (load.site == SiteId(0)) {
      EXPECT_EQ(load.raw_free, 600);
    }
  }
}

TEST(InProc, CallToUnknownMethodTimesOut) {
  Fixture f;
  net::SyncClient client(f.transport);
  const auto reply = client.call<GetSiteLoadsRequest, GetSiteLoadsReply>(
      f.dp.node(), 999, f.request(1), 100ms);
  EXPECT_FALSE(reply.ok());
  EXPECT_EQ(reply.error(), "timeout");
}

TEST(InProc, ConcurrentClientsIndependentCorrelation) {
  Fixture f;
  std::atomic<int> mismatches{0};
  std::vector<std::jthread> workers;
  for (int t = 0; t < 3; ++t) {
    workers.emplace_back([&f, &mismatches] {
      net::SyncClient client(f.transport);
      for (int q = 0; q < 100; ++q) {
        const auto reply = client.call<GetSiteLoadsRequest, GetSiteLoadsReply>(
            f.dp.node(), Method::kGetSiteLoads, f.request(std::uint64_t(q)),
            5000ms);
        if (!reply.ok() || reply.value().candidates.size() != 8u) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  workers.clear();
  EXPECT_EQ(mismatches.load(), 0);
}

}  // namespace
}  // namespace digruber
