// Dynamic membership: the SWIM-style table's merge/sweep semantics, the
// decision-point failure detector riding the exchange cadence, runtime
// join via snapshot bootstrap (with seed rotation on crash/partition),
// graceful leave with drain NACKs, and membership-aware client routing
// (joiner pickup, dead-point quarantine with no half-open re-probing).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "digruber/digruber/client.hpp"
#include "digruber/digruber/decision_point.hpp"
#include "digruber/digruber/membership.hpp"
#include "digruber/net/sim_transport.hpp"

namespace digruber::digruber {
namespace {

sim::Time at(double s) { return sim::Time::from_seconds(s); }

MembershipOptions table_options() {
  MembershipOptions o;
  o.enabled = true;
  o.suspect_after = 2.5;
  o.dead_after = 4.0;
  return o;
}

MemberInfo info(std::uint64_t dp, std::uint64_t node,
                MemberState state = MemberState::kAlive,
                std::uint32_t incarnation = 0) {
  return MemberInfo{DpId(dp), node, state, incarnation};
}

// ---------------------------------------------------------------------------
// MembershipTable unit tests (pure state machine, no simulation).

TEST(MembershipTable, SweepDeclaresSilentPeerSuspectThenDead) {
  MembershipTable table(DpId(0), 100, table_options());
  table.seed({info(0, 100), info(1, 101)}, sim::Time::zero());
  const std::uint64_t epoch0 = table.epoch();
  const sim::Duration interval = sim::Duration::seconds(10);

  // 20 s of silence: below the 25 s suspicion threshold, nothing moves.
  EXPECT_TRUE(table.sweep(at(20), interval).transitions.empty());
  EXPECT_EQ(table.state_of(DpId(1)), MemberState::kAlive);

  // 30 s: suspect (>= 2.5 intervals), but not yet dead (< 4 intervals).
  auto r1 = table.sweep(at(30), interval);
  ASSERT_EQ(r1.transitions.size(), 1u);
  EXPECT_EQ(r1.transitions[0].peer, DpId(1));
  EXPECT_EQ(r1.transitions[0].to, MemberState::kSuspect);
  EXPECT_EQ(table.state_of(DpId(1)), MemberState::kSuspect);
  // A suspect is still an exchange target (its reply refutes the verdict).
  EXPECT_EQ(table.live_peer_nodes().size(), 1u);

  // 45 s: past the 40 s death threshold.
  auto r2 = table.sweep(at(45), interval);
  ASSERT_EQ(r2.transitions.size(), 1u);
  EXPECT_EQ(r2.transitions[0].to, MemberState::kDead);
  EXPECT_EQ(table.state_of(DpId(1)), MemberState::kDead);
  EXPECT_TRUE(table.live_peer_nodes().empty());

  EXPECT_EQ(table.counters().suspicions, 1u);
  EXPECT_EQ(table.counters().deaths, 1u);
  // Every verdict is a view change the epoch must advertise.
  EXPECT_GT(table.epoch(), epoch0);
  ASSERT_EQ(table.transitions().size(), 2u);
  EXPECT_EQ(table.transitions()[1].at, at(45));
}

TEST(MembershipTable, LateFrameRefutesSuspicionButNotDeath) {
  MembershipTable table(DpId(0), 100, table_options());
  table.seed({info(1, 101)}, sim::Time::zero());
  const sim::Duration interval = sim::Duration::seconds(10);

  table.sweep(at(30), interval);
  ASSERT_EQ(table.state_of(DpId(1)), MemberState::kSuspect);

  // A single frame at the same incarnation refutes the suspicion.
  auto refute = table.heard_from(DpId(1), 101, 0, at(32));
  ASSERT_TRUE(refute.has_value());
  EXPECT_EQ(refute->to, MemberState::kAlive);
  EXPECT_EQ(table.counters().refutations, 1u);

  // Silence from 32 s to 80 s crosses both thresholds in one sweep.
  auto swept = table.sweep(at(80), interval);
  ASSERT_EQ(swept.transitions.size(), 2u);
  EXPECT_EQ(table.state_of(DpId(1)), MemberState::kDead);

  // Dead is terminal for the incarnation: a late frame from the previous
  // life must not resurrect the entry...
  EXPECT_FALSE(table.heard_from(DpId(1), 101, 0, at(85)).has_value());
  EXPECT_EQ(table.state_of(DpId(1)), MemberState::kDead);
  // ...but a strictly newer incarnation is a restart and does.
  auto resurrect = table.heard_from(DpId(1), 101, 1, at(90));
  ASSERT_TRUE(resurrect.has_value());
  EXPECT_EQ(resurrect->to, MemberState::kAlive);
  EXPECT_EQ(table.state_of(DpId(1)), MemberState::kAlive);
  EXPECT_EQ(table.counters().refutations, 2u);
}

TEST(MembershipTable, AbsorbMergesBySeverityThenIncarnation) {
  MembershipTable table(DpId(0), 100, table_options());
  table.seed({info(1, 101)}, sim::Time::zero());

  auto absorb_one = [&](MemberInfo member, double t) {
    MembershipUpdate update;
    update.epoch = 0;  // epoch merge tested separately
    update.members = {member};
    return table.absorb(update, at(t));
  };

  // Within one incarnation, severity wins: suspect beats alive...
  EXPECT_EQ(absorb_one(info(1, 101, MemberState::kSuspect), 10).size(), 1u);
  EXPECT_EQ(table.state_of(DpId(1)), MemberState::kSuspect);
  // ...so an alive claim at the same incarnation cannot undo it...
  EXPECT_TRUE(absorb_one(info(1, 101, MemberState::kAlive), 11).empty());
  EXPECT_EQ(table.state_of(DpId(1)), MemberState::kSuspect);
  // ...and dead beats suspect.
  EXPECT_EQ(absorb_one(info(1, 101, MemberState::kDead), 12).size(), 1u);
  EXPECT_EQ(table.state_of(DpId(1)), MemberState::kDead);

  // A higher incarnation always wins, whatever the severities.
  EXPECT_EQ(absorb_one(info(1, 101, MemberState::kAlive, 1), 13).size(), 1u);
  EXPECT_EQ(table.state_of(DpId(1)), MemberState::kAlive);

  // A graceful leave at that incarnation is terminal.
  EXPECT_EQ(absorb_one(info(1, 101, MemberState::kLeft, 1), 14).size(), 1u);
  EXPECT_EQ(table.state_of(DpId(1)), MemberState::kLeft);
  EXPECT_EQ(table.counters().leaves_observed, 1u);
  EXPECT_TRUE(table.live_peer_nodes().empty());
}

TEST(MembershipTable, SelfClaimIsRefutedByIncarnationBump) {
  MembershipTable table(DpId(0), 100, table_options());
  table.seed({info(1, 101)}, sim::Time::zero());

  MembershipUpdate rumour;
  rumour.members = {info(0, 100, MemberState::kDead, 0)};
  EXPECT_TRUE(table.absorb(rumour, at(5)).empty());

  // The table outlives the claimed incarnation; the bumped self entry
  // gossips back out and overrides the rumour everywhere.
  EXPECT_EQ(table.self().state, MemberState::kAlive);
  EXPECT_GT(table.self().incarnation, 0u);
  EXPECT_EQ(table.counters().refutations, 1u);
}

TEST(MembershipTable, RestartWithHigherIncarnationSupersedesStaleDeath) {
  MembershipTable table(DpId(0), 100, table_options());
  table.seed({info(1, 101)}, sim::Time::zero());

  // Durable restart: recovery replays the persisted incarnation floor (3)
  // and resumes one above it, resetting to the seed view.
  table.reset_to_seeds(at(50), 4);
  EXPECT_EQ(table.self().incarnation, 4u);
  EXPECT_EQ(table.self().state, MemberState::kAlive);

  // Peers still gossiping the death verdict from the previous life (any
  // incarnation below the persisted floor + 1) can no longer bite: the
  // restarted entry is strictly newer, so no refutation round is needed.
  MembershipUpdate stale;
  stale.members = {info(0, 100, MemberState::kDead, 3)};
  EXPECT_TRUE(table.absorb(stale, at(51)).empty());
  EXPECT_EQ(table.self().state, MemberState::kAlive);
  EXPECT_EQ(table.self().incarnation, 4u);
  EXPECT_EQ(table.counters().refutations, 0u);

  // A verdict at the *current* incarnation is genuinely new evidence and
  // still triggers the usual self-refutation bump.
  MembershipUpdate current;
  current.members = {info(0, 100, MemberState::kDead, 4)};
  EXPECT_TRUE(table.absorb(current, at(52)).empty());
  EXPECT_GT(table.self().incarnation, 4u);
  EXPECT_EQ(table.counters().refutations, 1u);
}

TEST(MembershipTable, AbsorbLearnsJoinersAndMaxMergesEpoch) {
  MembershipTable table(DpId(0), 100, table_options());
  table.seed({info(1, 101)}, sim::Time::zero());

  MembershipUpdate update;
  update.epoch = 40;
  update.members = {info(2, 102)};
  auto changed = table.absorb(update, at(5));
  ASSERT_EQ(changed.size(), 1u);
  EXPECT_EQ(changed[0].peer, DpId(2));
  EXPECT_EQ(table.counters().joins_observed, 1u);
  EXPECT_EQ(table.live_peer_nodes().size(), 2u);
  // Epochs are max-merged so the mesh converges on one monotone mark.
  EXPECT_EQ(table.epoch(), 40u);
  EXPECT_TRUE(table.absorb(update, at(6)).empty());  // idempotent
  EXPECT_EQ(table.epoch(), 40u);
}

// ---------------------------------------------------------------------------
// Decision-point integration (failure detector, join, leave) and
// membership-aware client routing, on the simulated WAN.

net::ContainerProfile fast_profile() {
  net::ContainerProfile p;
  p.workers = 4;
  p.base_overhead = sim::Duration::millis(5);
  p.auth_cost = sim::Duration::zero();
  p.parse_cost_per_kb = sim::Duration::zero();
  p.serialize_cost_per_kb = sim::Duration::zero();
  return p;
}

struct Fixture {
  sim::Simulation sim;
  net::SimTransport transport;
  grid::VoCatalog catalog = grid::VoCatalog::uniform(2, 2);
  usla::AllocationTree tree;

  explicit Fixture(std::uint64_t seed = 1)
      : transport(sim, net::WanModel(net::WanParams{}, seed)) {
    tree = usla::AllocationTree::build({}, catalog).value();
  }

  /// Membership-enabled options with a 10 s heartbeat: suspect after 25 s
  /// of silence, dead after 40 s, detection budget 2 * 2.5 * 10 = 50 s.
  DecisionPointOptions dp_options() {
    DecisionPointOptions o;
    o.profile = fast_profile();
    o.exchange_interval = sim::Duration::seconds(10);
    o.eval_cost_per_site = sim::Duration::millis(0.1);
    o.membership.enabled = true;
    o.membership.join_snapshot_timeout = sim::Duration::seconds(5);
    o.membership.join_retry_backoff = sim::Duration::seconds(2);
    return o;
  }

  std::vector<grid::SiteSnapshot> snapshots() {
    std::vector<grid::SiteSnapshot> out;
    for (std::uint64_t i = 0; i < 3; ++i) {
      grid::SiteSnapshot s;
      s.site = SiteId(i);
      s.total_cpus = 100;
      s.free_cpus = std::int32_t(100 - 10 * i);
      out.push_back(s);
    }
    return out;
  }

  std::vector<SiteId> sites() { return {SiteId(0), SiteId(1), SiteId(2)}; }

  grid::Job job() {
    grid::Job j;
    j.id = JobId(1);
    j.vo = VoId(0);
    j.group = GroupId(0);
    j.user = UserId(0);
    j.cpus = 1;
    return j;
  }

  void seed_all(std::vector<DecisionPoint*> dps) {
    std::vector<MemberInfo> members;
    for (DecisionPoint* dp : dps) {
      members.push_back(MemberInfo{dp->id(), dp->node().value(),
                                   MemberState::kAlive, 0});
    }
    for (DecisionPoint* dp : dps) dp->seed_membership(members);
  }

  void report_selection(net::RpcClient& rpc, NodeId dp, std::int32_t cpus) {
    ReportSelectionRequest report;
    report.site = SiteId(0);
    report.vo = VoId(0);
    report.group = GroupId(0);
    report.user = UserId(0);
    report.cpus = cpus;
    report.est_runtime = sim::Duration::minutes(60);
    rpc.call<ReportSelectionRequest, Ack>(dp, kReportSelection, report,
                                          sim::Duration::seconds(30),
                                          [](Result<Ack>) {});
  }

  std::unique_ptr<DiGruberClient> client(std::vector<NodeId> dps,
                                         ClientOptions options) {
    return std::make_unique<DiGruberClient>(
        sim, transport, ClientId(0), std::move(dps), sites(),
        gruber::make_selector("top-k", sim.rng().fork()), sim.rng().fork(),
        options);
  }
};

TEST(Membership, DetectorDeclaresCrashedPeerDeadWithinBudget) {
  Fixture f;
  DecisionPoint a(f.sim, f.transport, DpId(0), f.catalog, f.tree, f.dp_options());
  DecisionPoint b(f.sim, f.transport, DpId(1), f.catalog, f.tree, f.dp_options());
  DecisionPoint c(f.sim, f.transport, DpId(2), f.catalog, f.tree, f.dp_options());
  a.bootstrap(f.snapshots());
  b.bootstrap(f.snapshots());
  c.bootstrap(f.snapshots());
  f.seed_all({&a, &b, &c});

  f.sim.schedule_at(at(35), [&] { a.crash(); });

  // Budget: crash at 35 s, last frame heard ~30 s, dead after 40 s of
  // silence, swept on the 10 s cadence -> declared by ~85 s on every
  // surviving peer (well inside crash + 2 suspicion intervals = 85 s).
  f.sim.run_until(at(95));
  for (DecisionPoint* survivor : {&b, &c}) {
    ASSERT_TRUE(survivor->membership() != nullptr);
    EXPECT_EQ(survivor->membership()->state_of(DpId(0)), MemberState::kDead);
    EXPECT_GE(survivor->membership()->counters().suspicions, 1u);
    EXPECT_GE(survivor->membership()->counters().deaths, 1u);
  }
  // The dead peer dropped out of the exchange fan-out; survivors still
  // heartbeat each other.
  EXPECT_EQ(b.membership()->live_peer_nodes(),
            (std::vector<NodeId>{c.node()}));
  EXPECT_EQ(b.membership()->state_of(DpId(2)), MemberState::kAlive);
  b.stop();
  c.stop();
}

TEST(Membership, JoinBootstrapsFromSnapshotAndAnnouncesItself) {
  Fixture f;
  DecisionPoint a(f.sim, f.transport, DpId(0), f.catalog, f.tree, f.dp_options());
  DecisionPoint b(f.sim, f.transport, DpId(1), f.catalog, f.tree, f.dp_options());
  DecisionPoint c(f.sim, f.transport, DpId(2), f.catalog, f.tree, f.dp_options());
  a.bootstrap(f.snapshots());
  b.bootstrap(f.snapshots());
  // c is deliberately NOT bootstrapped: everything it knows must come from
  // the seed's snapshot.
  f.seed_all({&a, &b});

  net::RpcClient rpc(f.sim, f.transport);
  f.report_selection(rpc, a.node(), 40);

  f.sim.schedule_at(at(25), [&] { c.join({a.node(), b.node()}); });
  f.sim.run_until(at(60));

  // One transfer from the first seed, no retries, and the snapshot carried
  // the active dispatch record — not a full-history replay.
  EXPECT_TRUE(c.serving());
  EXPECT_EQ(c.join_retries(), 0u);
  EXPECT_EQ(a.snapshots_served(), 1u);
  EXPECT_EQ(b.snapshots_served(), 0u);
  EXPECT_EQ(c.join_snapshot_records(), 1u);
  EXPECT_GE(c.serving_since(), at(25));
  // The bootstrapped view reflects the seed's belief: 100 - 40 on site 0.
  EXPECT_EQ(c.engine().view().estimated_free(SiteId(0), f.sim.now()), 60);

  // The joiner announced itself with its first exchange: both incumbents
  // admitted it as alive and will flood records its way.
  EXPECT_EQ(a.membership()->state_of(DpId(2)), MemberState::kAlive);
  EXPECT_EQ(b.membership()->state_of(DpId(2)), MemberState::kAlive);
  EXPECT_GE(a.membership()->counters().joins_observed, 1u);
  a.stop();
  b.stop();
  c.stop();
}

TEST(Membership, JoinRotatesToNextSeedWhenFirstCrashesMidTransfer) {
  Fixture f;
  DecisionPoint a(f.sim, f.transport, DpId(0), f.catalog, f.tree, f.dp_options());
  DecisionPoint b(f.sim, f.transport, DpId(1), f.catalog, f.tree, f.dp_options());
  DecisionPoint c(f.sim, f.transport, DpId(2), f.catalog, f.tree, f.dp_options());
  a.bootstrap(f.snapshots());
  b.bootstrap(f.snapshots());
  f.seed_all({&a, &b});

  // The seed dies with the snapshot request in flight: the transfer must
  // abort cleanly (no partial state applied) and rotate to the next seed
  // after the backoff.
  f.sim.schedule_at(at(10), [&] { c.join({a.node(), b.node()}); });
  f.sim.schedule_at(sim::Time::from_seconds(10.001), [&] { a.crash(); });

  // While the join is pending, query traffic bounces off the door with a
  // typed draining NACK — a partial-state point must not answer queries.
  bool refused = false;
  net::RpcClient probe(f.sim, f.transport);
  f.sim.schedule_at(at(12), [&] {
    GetSiteLoadsRequest query;
    query.job = JobId(9);
    query.vo = VoId(0);
    query.group = GroupId(0);
    query.user = UserId(0);
    probe.call<GetSiteLoadsRequest, GetSiteLoadsReply>(
        c.node(), kGetSiteLoads, query, sim::Duration::seconds(10),
        [&](Result<GetSiteLoadsReply> result) {
          refused = true;
          ASSERT_FALSE(result.ok());
          EXPECT_NE(result.error().find("drain"), std::string::npos)
              << result.error();
        });
  });

  f.sim.run_until(at(40));
  EXPECT_TRUE(refused);
  EXPECT_TRUE(c.serving());
  EXPECT_GE(c.join_retries(), 1u);
  EXPECT_EQ(a.snapshots_served(), 0u);
  EXPECT_EQ(b.snapshots_served(), 1u);
  EXPECT_EQ(c.queries_served(), 0u);
  EXPECT_GE(c.drain_nacks_sent(), 1u);
  b.stop();
  c.stop();
}

TEST(Membership, JoinerCrashMidTransferDropsLateSnapshot) {
  Fixture f;
  DecisionPoint a(f.sim, f.transport, DpId(0), f.catalog, f.tree, f.dp_options());
  DecisionPoint b(f.sim, f.transport, DpId(1), f.catalog, f.tree, f.dp_options());
  DecisionPoint c(f.sim, f.transport, DpId(2), f.catalog, f.tree, f.dp_options());
  a.bootstrap(f.snapshots());
  b.bootstrap(f.snapshots());
  f.seed_all({&a, &b});

  net::RpcClient rpc(f.sim, f.transport);
  f.report_selection(rpc, a.node(), 40);

  // This time the *joiner* dies with the kJoinSnapshot reply in flight. The
  // seed serves the transfer, but the bytes land on a crashed incarnation —
  // the abort guard must drop them instead of half-applying state.
  f.sim.schedule_at(at(25), [&] { c.join({a.node(), b.node()}); });
  f.sim.schedule_at(sim::Time::from_seconds(25.001), [&] { c.crash(); });
  f.sim.run_until(at(45));

  EXPECT_EQ(a.snapshots_served(), 1u);
  EXPECT_FALSE(c.serving());
  EXPECT_FALSE(c.running());
  EXPECT_EQ(c.join_snapshot_records(), 0u);

  // The crashed joiner comes back and re-runs the whole join; the mesh
  // (which never admitted the aborted life) accepts the new one.
  c.restart(f.snapshots());
  c.join({a.node(), b.node()});
  f.sim.run_until(at(90));
  EXPECT_TRUE(c.serving());
  EXPECT_EQ(c.join_snapshot_records(), 1u);
  EXPECT_EQ(a.membership()->state_of(DpId(2)), MemberState::kAlive);
  a.stop();
  b.stop();
  c.stop();
}

TEST(Membership, JoinRidesOutPartitionedSeedViaTimeout) {
  Fixture f;
  DecisionPoint a(f.sim, f.transport, DpId(0), f.catalog, f.tree, f.dp_options());
  DecisionPoint b(f.sim, f.transport, DpId(1), f.catalog, f.tree, f.dp_options());
  DecisionPoint c(f.sim, f.transport, DpId(2), f.catalog, f.tree, f.dp_options());
  a.bootstrap(f.snapshots());
  b.bootstrap(f.snapshots());
  f.seed_all({&a, &b});

  // Partition the first seed away before the join: the transfer times out
  // (rather than erroring fast), and the rotation still lands on b.
  f.sim.schedule_at(at(5), [&] {
    f.transport.set_island(a.node(), 1);
    f.transport.set_island(a.peer_node(), 1);
  });
  f.sim.schedule_at(at(10), [&] { c.join({a.node(), b.node()}); });

  f.sim.run_until(at(40));
  EXPECT_TRUE(c.serving());
  EXPECT_GE(c.join_retries(), 1u);
  EXPECT_EQ(b.snapshots_served(), 1u);
  EXPECT_EQ(c.queries_served(), 0u);
  EXPECT_GE(f.transport.packets_dropped(net::DropCause::kPartition), 1u);
  b.stop();
  c.stop();
}

TEST(Membership, LeaveDrainsAndRedirectsClientsToSurvivors) {
  Fixture f;
  DecisionPoint a(f.sim, f.transport, DpId(0), f.catalog, f.tree, f.dp_options());
  DecisionPoint b(f.sim, f.transport, DpId(1), f.catalog, f.tree, f.dp_options());
  DecisionPoint c(f.sim, f.transport, DpId(2), f.catalog, f.tree, f.dp_options());
  a.bootstrap(f.snapshots());
  b.bootstrap(f.snapshots());
  c.bootstrap(f.snapshots());
  f.seed_all({&a, &b, &c});

  ClientOptions options;
  options.attempt_timeout = sim::Duration::seconds(5);
  options.membership_aware = true;
  auto client = f.client({a.node(), b.node()}, options);

  f.sim.schedule_at(at(20), [&] { a.leave(); });

  bool done = false;
  f.sim.schedule_at(at(22), [&] {
    client->schedule(f.job(), [&](grid::Job, QueryOutcome outcome) {
      done = true;
      EXPECT_TRUE(outcome.handled_by_gruber);
      EXPECT_EQ(outcome.served_by, b.node());
    });
  });

  f.sim.run_until(at(60));
  ASSERT_TRUE(done);

  // The departed point drained: marked left everywhere, gone from the
  // survivors' fan-out, and its door refused the straggler query.
  EXPECT_TRUE(a.left());
  EXPECT_FALSE(a.serving());
  EXPECT_EQ(b.membership()->state_of(DpId(0)), MemberState::kLeft);
  EXPECT_EQ(c.membership()->state_of(DpId(0)), MemberState::kLeft);
  EXPECT_GE(b.membership()->counters().leaves_observed, 1u);
  EXPECT_GE(a.drain_nacks_sent(), 1u);

  // The typed NACK was a redirect, not a failure: no fallback, and the
  // piggybacked view quarantined the departed point for good.
  EXPECT_EQ(client->drain_redirects(), 1u);
  EXPECT_EQ(client->fallbacks(), 0u);
  EXPECT_TRUE(client->is_quarantined(0));
  b.stop();
  c.stop();
}

TEST(Membership, QuarantineStopsHalfOpenReprobesOfDeadPoint) {
  Fixture f;
  DecisionPoint a(f.sim, f.transport, DpId(0), f.catalog, f.tree, f.dp_options());
  DecisionPoint b(f.sim, f.transport, DpId(1), f.catalog, f.tree, f.dp_options());
  a.bootstrap(f.snapshots());
  b.bootstrap(f.snapshots());
  f.seed_all({&a, &b});

  // Aggressive breaker so the legacy behavior (without quarantine) would
  // re-probe the dead point on nearly every query.
  ClientOptions options;
  options.attempt_timeout = sim::Duration::seconds(2);
  options.breaker_threshold = 1;
  options.breaker_cooldown = sim::Duration::seconds(5);
  options.membership_aware = true;
  auto client = f.client({a.node(), b.node()}, options);

  f.sim.schedule_at(at(1), [&] { a.crash(); });  // permanent

  std::uint64_t handled = 0;
  for (int i = 0; i < 12; ++i) {
    f.sim.schedule_at(at(2 + 15.0 * i), [&] {
      client->schedule(f.job(), [&](grid::Job, QueryOutcome outcome) {
        if (outcome.handled_by_gruber) ++handled;
      });
    });
  }

  // b declares a dead by ~40 s; the next stale-epoch query reply carries
  // the verdict and the client quarantines index 0.
  std::uint64_t failovers_after_quarantine = 0;
  f.sim.schedule_at(at(75), [&] {
    EXPECT_TRUE(client->is_quarantined(0));
    failovers_after_quarantine = client->failovers();
  });

  f.sim.run_until(at(200));
  EXPECT_EQ(handled, 12u);
  EXPECT_EQ(client->dps_quarantined(), 1u);
  EXPECT_GE(client->failovers(), 1u);  // pre-quarantine probes did fail over
  // The fix under test: once membership says dead, there are no further
  // probes — not even half-open ones — so the failover count froze.
  EXPECT_EQ(client->failovers(), failovers_after_quarantine);
  b.stop();
}

TEST(Membership, StaleEpochClientLearnsJoinerFromQueryReply) {
  Fixture f;
  DecisionPoint a(f.sim, f.transport, DpId(0), f.catalog, f.tree, f.dp_options());
  DecisionPoint b(f.sim, f.transport, DpId(1), f.catalog, f.tree, f.dp_options());
  DecisionPoint c(f.sim, f.transport, DpId(2), f.catalog, f.tree, f.dp_options());
  a.bootstrap(f.snapshots());
  b.bootstrap(f.snapshots());
  f.seed_all({&a, &b});

  ClientOptions options;
  options.attempt_timeout = sim::Duration::seconds(5);
  options.membership_aware = true;
  auto client = f.client({a.node(), b.node()}, options);

  f.sim.schedule_at(at(30), [&] { c.join({a.node(), b.node()}); });

  bool done = false;
  f.sim.schedule_at(at(55), [&] {
    client->schedule(f.job(), [&](grid::Job, QueryOutcome outcome) {
      done = true;
      EXPECT_TRUE(outcome.handled_by_gruber);
    });
  });

  f.sim.run_until(at(90));
  ASSERT_TRUE(done);
  // The reply piggybacked the newer view: the joiner is now a routing
  // target with a fresh breaker.
  EXPECT_GE(client->membership_updates_applied(), 1u);
  EXPECT_EQ(client->dps_added(), 1u);
  ASSERT_EQ(client->decision_points().size(), 3u);
  EXPECT_EQ(client->decision_points()[2], c.node());
  EXPECT_GT(client->membership_epoch(), 0u);
  a.stop();
  b.stop();
  c.stop();
}

}  // namespace
}  // namespace digruber::digruber
