#include "digruber/metrics/metrics.hpp"

#include <gtest/gtest.h>

namespace digruber::metrics {
namespace {

RequestSample handled_sample(double response, double qtime, double accuracy,
                             double cpu_seconds) {
  RequestSample s;
  s.handled = true;
  s.response_s = response;
  s.dispatched = true;
  s.accuracy = accuracy;
  s.accuracy_total_share = accuracy / 10.0;
  s.started = true;
  s.qtime_s = qtime;
  s.cpu_seconds_in_window = cpu_seconds;
  return s;
}

RequestSample fallback_sample(double response) {
  RequestSample s;
  s.handled = false;
  s.response_s = response;
  s.dispatched = true;
  s.accuracy = 0.1;
  s.started = true;
  s.qtime_s = 100.0;
  s.cpu_seconds_in_window = 50.0;
  return s;
}

TEST(Metrics, SlicesSeparateHandledFromFallback) {
  MetricsAccumulator acc(/*window_s=*/3600, /*total_cpus=*/1000);
  acc.add(handled_sample(5, 0, 1.0, 600));
  acc.add(handled_sample(7, 10, 0.9, 600));
  acc.add(fallback_sample(60));

  const MetricValues handled = acc.compute(Slice::kHandled);
  EXPECT_EQ(handled.requests, 2u);
  EXPECT_NEAR(handled.request_share, 2.0 / 3.0, 1e-9);
  EXPECT_DOUBLE_EQ(handled.response_s, 6.0);
  EXPECT_DOUBLE_EQ(handled.qtime_s, 5.0);
  EXPECT_DOUBLE_EQ(handled.norm_qtime_s, 2.5);
  EXPECT_NEAR(handled.accuracy, 0.95, 1e-9);
  EXPECT_NEAR(handled.utilization, 1200.0 / (3600.0 * 1000.0), 1e-12);

  const MetricValues fallback = acc.compute(Slice::kNotHandled);
  EXPECT_EQ(fallback.requests, 1u);
  EXPECT_DOUBLE_EQ(fallback.response_s, 60.0);
  EXPECT_DOUBLE_EQ(fallback.qtime_s, 100.0);

  const MetricValues all = acc.compute(Slice::kAll);
  EXPECT_EQ(all.requests, 3u);
  EXPECT_DOUBLE_EQ(all.request_share, 1.0);
  EXPECT_NEAR(all.response_s, 24.0, 1e-9);
  EXPECT_DOUBLE_EQ(all.throughput_qps, 3.0 / 3600.0);
}

TEST(Metrics, EmptySlicesAreZero) {
  MetricsAccumulator acc(3600, 1000);
  acc.add(handled_sample(5, 0, 1.0, 0));
  const MetricValues none = acc.compute(Slice::kNotHandled);
  EXPECT_EQ(none.requests, 0u);
  EXPECT_DOUBLE_EQ(none.response_s, 0.0);
  EXPECT_DOUBLE_EQ(none.accuracy, 0.0);
}

TEST(Metrics, UndispatchedExcludedFromAccuracyAndQtime) {
  MetricsAccumulator acc(100, 10);
  RequestSample s;
  s.handled = true;
  s.response_s = 2.0;
  s.dispatched = false;  // query answered but job never placed
  acc.add(s);
  acc.add(handled_sample(4.0, 6.0, 0.8, 10));
  const MetricValues handled = acc.compute(Slice::kHandled);
  EXPECT_EQ(handled.requests, 2u);
  EXPECT_DOUBLE_EQ(handled.response_s, 3.0);
  EXPECT_DOUBLE_EQ(handled.accuracy, 0.8);  // only the dispatched one
  EXPECT_DOUBLE_EQ(handled.qtime_s, 6.0);
}

TEST(CpuSecondsInWindow, OverlapCases) {
  // Fully inside.
  EXPECT_DOUBLE_EQ(cpu_seconds_in_window(10, 20, 2, 100), 20.0);
  // Truncated by the window end.
  EXPECT_DOUBLE_EQ(cpu_seconds_in_window(90, 120, 1, 100), 10.0);
  // Still running (completed < 0 means unknown).
  EXPECT_DOUBLE_EQ(cpu_seconds_in_window(50, -1, 3, 100), 150.0);
  // Started after the window.
  EXPECT_DOUBLE_EQ(cpu_seconds_in_window(150, 200, 1, 100), 0.0);
  // Never started.
  EXPECT_DOUBLE_EQ(cpu_seconds_in_window(-1, 10, 1, 100), 0.0);
  // Degenerate zero-length run.
  EXPECT_DOUBLE_EQ(cpu_seconds_in_window(30, 30, 4, 100), 0.0);
}

TEST(Metrics, NormQtimeDividesByRequests) {
  MetricsAccumulator acc(3600, 100);
  for (int i = 0; i < 10; ++i) acc.add(handled_sample(1, 50, 1.0, 0));
  const MetricValues v = acc.compute(Slice::kHandled);
  EXPECT_DOUBLE_EQ(v.qtime_s, 50.0);
  EXPECT_DOUBLE_EQ(v.norm_qtime_s, 5.0);
}

TEST(Metrics, AccuracyTotalShareTracked) {
  MetricsAccumulator acc(3600, 100);
  acc.add(handled_sample(1, 0, 0.8, 0));
  const MetricValues v = acc.compute(Slice::kAll);
  EXPECT_NEAR(v.accuracy_total_share, 0.08, 1e-9);
}

}  // namespace
}  // namespace digruber::metrics

namespace digruber::metrics {
namespace {

TEST(Fairness, JainIndexExtremes) {
  EXPECT_DOUBLE_EQ(jain_index({}), 1.0);
  EXPECT_DOUBLE_EQ(jain_index({5.0}), 1.0);
  EXPECT_DOUBLE_EQ(jain_index({3.0, 3.0, 3.0, 3.0}), 1.0);
  // One consumer takes everything among n=4 -> 1/4.
  EXPECT_DOUBLE_EQ(jain_index({8.0, 0.0, 0.0, 0.0}), 0.25);
  EXPECT_DOUBLE_EQ(jain_index({0.0, 0.0}), 1.0);  // nothing delivered
}

TEST(Fairness, JainIndexIsScaleInvariant) {
  const double a = jain_index({1.0, 2.0, 3.0});
  const double b = jain_index({10.0, 20.0, 30.0});
  EXPECT_NEAR(a, b, 1e-12);
  EXPECT_GT(a, 0.33);
  EXPECT_LT(a, 1.0);
}

TEST(Fairness, ReportSharesAndBounds) {
  const FairnessReport r = fairness({10.0, 30.0, 60.0});
  EXPECT_EQ(r.consumers, 3u);
  EXPECT_DOUBLE_EQ(r.min_share, 0.1);
  EXPECT_DOUBLE_EQ(r.max_share, 0.6);
  EXPECT_GT(r.jain, 1.0 / 3.0);
  EXPECT_LT(r.jain, 1.0);

  const FairnessReport empty = fairness({});
  EXPECT_DOUBLE_EQ(empty.jain, 1.0);
  EXPECT_EQ(empty.consumers, 0u);
}

}  // namespace
}  // namespace digruber::metrics
