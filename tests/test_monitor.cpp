#include "digruber/gruber/monitor.hpp"

#include <gtest/gtest.h>

#include "digruber/common/log.hpp"

namespace digruber::gruber {
namespace {

struct Fixture {
  sim::Simulation sim;
  grid::VoCatalog catalog = grid::VoCatalog::uniform(1, 1);
  usla::AllocationTree tree = usla::AllocationTree::build({}, catalog).value();
  grid::Grid grid;
  GruberEngine engine{catalog, tree};

  Fixture() : grid(sim, spec()) {}

  static grid::TopologySpec spec() {
    grid::TopologySpec s;
    s.sites.push_back({"a", {{10, 1.0}}});
    s.sites.push_back({"b", {{20, 1.0}}});
    return s;
  }

  grid::Job job(std::uint64_t id, int cpus, double runtime_s) {
    grid::Job j;
    j.id = JobId(id);
    j.vo = VoId(0);
    j.group = GroupId(0);
    j.user = UserId(0);
    j.cpus = cpus;
    j.runtime = sim::Duration::seconds(runtime_s);
    return j;
  }
};

TEST(SiteMonitor, BootstrapRefreshOnConstruction) {
  Fixture f;
  SiteMonitor monitor(f.sim, f.grid, f.engine);
  EXPECT_EQ(monitor.refreshes(), 1u);
  EXPECT_EQ(f.engine.view().site_count(), 2u);
  EXPECT_EQ(f.engine.view().estimated_free(SiteId(1), f.sim.now()), 20);
}

TEST(SiteMonitor, PeriodicPollTracksRealState) {
  Fixture f;
  SiteMonitor monitor(f.sim, f.grid, f.engine, sim::Duration::seconds(60));

  // A job lands out-of-band (not via the broker): only polling reveals it.
  f.sim.schedule_after(sim::Duration::seconds(10), [&] {
    f.grid.site(SiteId(1)).submit(f.job(1, 15, 500), [](const grid::Job&) {});
  });

  f.sim.run_until(sim::Time::from_seconds(30));
  EXPECT_EQ(f.engine.view().estimated_free(SiteId(1), f.sim.now()), 20);  // stale
  f.sim.run_until(sim::Time::from_seconds(70));
  EXPECT_EQ(f.engine.view().estimated_free(SiteId(1), f.sim.now()), 5);  // polled
  EXPECT_GE(monitor.refreshes(), 2u);
  monitor.stop();
  f.sim.run();
}

TEST(SiteMonitor, StopHaltsPolling) {
  Fixture f;
  SiteMonitor monitor(f.sim, f.grid, f.engine, sim::Duration::seconds(10));
  f.sim.run_until(sim::Time::from_seconds(25));
  const std::uint64_t seen = monitor.refreshes();
  monitor.stop();
  f.sim.run_until(sim::Time::from_seconds(200));
  EXPECT_EQ(monitor.refreshes(), seen);
}

TEST(SiteMonitor, ManualRefresh) {
  Fixture f;
  SiteMonitor monitor(f.sim, f.grid, f.engine);  // no polling
  f.grid.site(SiteId(0)).submit(f.job(1, 4, 100), [](const grid::Job&) {});
  EXPECT_EQ(f.engine.view().estimated_free(SiteId(0), f.sim.now()), 10);
  monitor.refresh();
  EXPECT_EQ(f.engine.view().estimated_free(SiteId(0), f.sim.now()), 6);
}

TEST(Log, LevelGating) {
  using namespace digruber::log;
  const Level original = level();
  set_level(Level::kError);
  EXPECT_EQ(level(), Level::kError);
  // These must not crash and are filtered below the threshold.
  debug("test", "dropped ", 1);
  info("test", "dropped ", 2.5);
  warn("test", "dropped");
  set_level(Level::kOff);
  error("test", "dropped too");
  set_level(original);
}

}  // namespace
}  // namespace digruber::gruber
