#include "digruber/overlay/overlay.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <queue>
#include <set>
#include <vector>

#include "digruber/overlay/trailer_stack.hpp"

namespace digruber::overlay {
namespace {

View view_for(std::size_t n, DpId self, std::size_t skip = SIZE_MAX) {
  View view;
  view.self = self;
  for (std::size_t i = 0; i < n; ++i) {
    if (DpId(i) == self || i == skip) continue;
    view.peers.push_back({DpId(i), NodeId(1000 + i)});
  }
  return view;
}

/// Build every point's push set from its own copy of the strategy and
/// check the union graph connects all n points (flooding can reach
/// everyone). `skip` simulates a dead member absent from every view.
void expect_connected(Kind kind, std::size_t n, std::size_t skip = SIZE_MAX) {
  Options options;
  options.kind = kind;
  std::map<std::uint64_t, std::vector<std::uint64_t>> edges;
  std::uint64_t start = SIZE_MAX;
  std::size_t live = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (i == skip) continue;
    ++live;
    if (start == SIZE_MAX) start = 1000 + i;
    auto strategy = make_strategy(options, DpId(i));
    strategy->rebuild(view_for(n, DpId(i), skip));
    std::vector<NodeId> candidates;
    for (const Member& m : view_for(n, DpId(i), skip).peers)
      candidates.push_back(m.node);
    std::vector<NodeId> out;
    strategy->select(0, candidates, out);
    for (const NodeId target : out)
      edges[1000 + i].push_back(target.value());
  }
  std::set<std::uint64_t> seen;
  std::queue<std::uint64_t> frontier;
  frontier.push(start);
  seen.insert(start);
  while (!frontier.empty()) {
    const std::uint64_t node = frontier.front();
    frontier.pop();
    for (const std::uint64_t next : edges[node])
      if (seen.insert(next).second) frontier.push(next);
  }
  EXPECT_EQ(seen.size(), live) << kind_name(kind) << " n=" << n;
}

TEST(Overlay, MeshSelectsAllCandidates) {
  auto strategy = make_strategy(Options{}, DpId(0));
  EXPECT_EQ(strategy->kind(), Kind::kMesh);
  EXPECT_EQ(strategy->ttl(), 0u);  // no hop trailer: legacy wire bytes
  EXPECT_EQ(strategy->watch_peers(), nullptr);
  EXPECT_DOUBLE_EQ(strategy->watch_stretch(), 1.0);
  const std::vector<NodeId> candidates = {NodeId(5), NodeId(7), NodeId(9)};
  std::vector<NodeId> out;
  strategy->select(3, candidates, out);
  EXPECT_EQ(out, candidates);
  EXPECT_FALSE(strategy->rebuild(view_for(4, DpId(0))));
}

TEST(Overlay, TreeEdgesAreSymmetricAndConnected) {
  for (const std::size_t n : {2u, 3u, 10u, 40u}) {
    expect_connected(Kind::kTree, n);
    // Symmetry: i lists j's node exactly when j lists i's — the watch-set
    // failure-detector contract depends on it.
    Options options;
    options.kind = Kind::kTree;
    std::map<std::size_t, std::set<std::uint64_t>> push;
    for (std::size_t i = 0; i < n; ++i) {
      auto s = make_strategy(options, DpId(i));
      s->rebuild(view_for(n, DpId(i)));
      std::vector<NodeId> out;
      s->select(0, {}, out);
      for (const NodeId t : out) push[i].insert(t.value());
      ASSERT_NE(s->watch_peers(), nullptr);
      EXPECT_EQ(s->watch_peers()->size(), out.size());
    }
    for (std::size_t i = 0; i < n; ++i)
      for (const std::uint64_t t : push[i])
        EXPECT_TRUE(push[t - 1000].count(1000 + i))
            << "asymmetric tree edge " << i << "<->" << (t - 1000);
  }
}

TEST(Overlay, TreeRepairsOnViewChange) {
  Options options;
  options.kind = Kind::kTree;
  // dp5's parent in a 10-point degree-3 tree is rank (5-1)/3 = 1 (dp1).
  auto strategy = make_strategy(options, DpId(5));
  EXPECT_TRUE(strategy->rebuild(view_for(10, DpId(5))));
  std::vector<NodeId> before;
  strategy->select(0, {}, before);
  ASSERT_FALSE(before.empty());
  EXPECT_EQ(before.front().value(), 1001u);

  // Same view again: no structural change, no repair counted.
  EXPECT_FALSE(strategy->rebuild(view_for(10, DpId(5))));

  // dp1 dies: the roster compacts, dp5's rank drops to 4, its parent
  // becomes rank (4-1)/3 = 1 — which is now dp2.
  EXPECT_TRUE(strategy->rebuild(view_for(10, DpId(5), 1)));
  std::vector<NodeId> after;
  strategy->select(0, {}, after);
  ASSERT_FALSE(after.empty());
  EXPECT_EQ(after.front().value(), 1002u);
  expect_connected(Kind::kTree, 10, 1);
}

TEST(Overlay, SuperPeerPromotesOnSuperDeath) {
  Options options;
  options.kind = Kind::kSuperPeer;
  options.superpeers = 2;  // supers = {dp0, dp1}, leaves round-robin
  // dp4 is a leaf: rank 4, (4-2) % 2 = 0 -> assigned to super rank 0 (dp0).
  auto strategy = make_strategy(options, DpId(4));
  EXPECT_TRUE(strategy->rebuild(view_for(6, DpId(4))));
  std::vector<NodeId> out;
  strategy->select(0, {}, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out.front().value(), 1000u);

  // dp0 dies: positional repair promotes dp2 to the super set everywhere
  // at once; dp4's rank compacts to 3, (3-2) % 2 = 1 -> super rank 1 (dp2).
  EXPECT_TRUE(strategy->rebuild(view_for(6, DpId(4), 0)));
  out.clear();
  strategy->select(0, {}, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out.front().value(), 1002u);
  expect_connected(Kind::kSuperPeer, 6, 0);
  expect_connected(Kind::kSuperPeer, 10);
  expect_connected(Kind::kSuperPeer, 40);
}

TEST(Overlay, GossipSameSeedIsBitIdentical) {
  Options options;
  options.kind = Kind::kGossip;
  options.gossip_fanout = 3;
  options.seed = 99;
  auto a = make_strategy(options, DpId(7));
  auto b = make_strategy(options, DpId(7));
  a->rebuild(view_for(20, DpId(7)));
  b->rebuild(view_for(20, DpId(7)));
  std::vector<NodeId> candidates;
  for (const Member& m : view_for(20, DpId(7)).peers)
    candidates.push_back(m.node);
  for (std::uint64_t round = 0; round < 50; ++round) {
    std::vector<NodeId> out_a, out_b;
    a->select(round, candidates, out_a);
    b->select(round, candidates, out_b);
    EXPECT_EQ(out_a, out_b) << "round " << round;
  }
}

TEST(Overlay, GossipSelectsDistinctPeersAndDifferentStreamsPerPoint) {
  Options options;
  options.kind = Kind::kGossip;
  options.gossip_fanout = 4;
  options.seed = 5;
  auto a = make_strategy(options, DpId(1));
  auto b = make_strategy(options, DpId(2));
  std::vector<NodeId> candidates;
  for (std::size_t i = 0; i < 30; ++i) candidates.push_back(NodeId(1000 + i));
  bool diverged = false;
  for (std::uint64_t round = 0; round < 20; ++round) {
    std::vector<NodeId> out_a, out_b;
    a->select(round, candidates, out_a);
    b->select(round, candidates, out_b);
    // Fan-out peers are sampled without replacement: no duplicates.
    std::set<std::uint64_t> uniq;
    for (const NodeId t : out_a) uniq.insert(t.value());
    EXPECT_EQ(uniq.size(), out_a.size());
    EXPECT_EQ(out_a.size(), 4u);
    if (out_a != out_b) diverged = true;
  }
  // Same base seed, different owners: per-point streams must differ.
  EXPECT_TRUE(diverged);
  // Fan-out clamps to the candidate pool.
  std::vector<NodeId> small = {NodeId(1), NodeId(2)};
  std::vector<NodeId> out;
  a->select(0, small, out);
  EXPECT_EQ(out.size(), 2u);
}

TEST(Overlay, TtlBoundsScaleWithStructure) {
  Options options;
  options.kind = Kind::kTree;
  auto tree = make_strategy(options, DpId(0));
  tree->rebuild(view_for(40, DpId(0)));
  // Depth of a 40-node degree-3 heap is 3 (1 + 3 + 9 + 27 covers rank
  // 39): diameter 6 plus repair slack.
  EXPECT_EQ(tree->ttl(), 2u * 3u + 4u);

  options.kind = Kind::kGossip;
  auto gossip = make_strategy(options, DpId(0));
  gossip->rebuild(view_for(40, DpId(0)));
  // ceil(log2 40) = 6, tripled for heavy-tailed copy paths.
  EXPECT_EQ(gossip->ttl(), 3u * 6u + 2u);

  options.kind = Kind::kSuperPeer;
  auto super = make_strategy(options, DpId(0));
  super->rebuild(view_for(40, DpId(0)));
  EXPECT_EQ(super->ttl(), 6u);
}

TEST(Overlay, MessagesPerRoundFormulas) {
  Options options;
  EXPECT_DOUBLE_EQ(messages_per_round(40, options), 40.0 * 39.0);
  options.kind = Kind::kTree;
  EXPECT_DOUBLE_EQ(messages_per_round(40, options), 2.0 * 39.0);
  options.kind = Kind::kGossip;
  options.gossip_fanout = 3;
  EXPECT_DOUBLE_EQ(messages_per_round(40, options), 40.0 * 3.0);
  options.kind = Kind::kSuperPeer;
  options.superpeers = 0;  // ceil(sqrt(40)) = 7 supers, 33 leaves
  EXPECT_DOUBLE_EQ(messages_per_round(40, options), 2.0 * 33.0 + 7.0 * 6.0);
  EXPECT_DOUBLE_EQ(messages_per_round(1, options), 0.0);
}

TEST(Overlay, GossipWatchStretchTracksContactPeriod) {
  Options options;
  options.kind = Kind::kGossip;
  options.gossip_fanout = 3;
  auto gossip = make_strategy(options, DpId(0));
  gossip->rebuild(view_for(31, DpId(0)));
  // Expected contact period (n-1)/fanout = 10 rounds, doubled.
  EXPECT_DOUBLE_EQ(gossip->watch_stretch(), 20.0);
  // Small rosters never stretch below one interval.
  gossip->rebuild(view_for(3, DpId(0)));
  EXPECT_DOUBLE_EQ(gossip->watch_stretch(), 2.0);
}

TEST(TrailerStack, AttachesThroughLastWantedSlot) {
  std::vector<int> attached;  // slot index, negated when forced
  TrailerStack stack;
  stack.slot(true, [&](bool forced) { attached.push_back(forced ? -1 : 1); })
      .slot(false, [&](bool forced) { attached.push_back(forced ? -2 : 2); })
      .slot(true, [&](bool forced) { attached.push_back(forced ? -3 : 3); })
      .slot(false, [&](bool forced) { attached.push_back(forced ? -4 : 4); })
      .compose();
  // Slot 2 is forced (empty payload) because slot 3 wants on; slot 4,
  // after the last wanted slot, must never attach.
  EXPECT_EQ(attached, (std::vector<int>{1, -2, 3}));
}

TEST(TrailerStack, NothingWantedAttachesNothing) {
  bool touched = false;
  TrailerStack stack;
  stack.slot(false, [&](bool) { touched = true; })
      .slot(false, [&](bool) { touched = true; })
      .compose();
  EXPECT_FALSE(touched);
}

}  // namespace
}  // namespace digruber::overlay
