// Overload-control behavior across the stack: typed overload NACKs on the
// wire, deadline propagation in the v2 frame header, the client's adaptive
// retry (token budget, retry_after honoring), and power-of-two-choices
// routing away from a saturated decision point.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "digruber/digruber/client.hpp"
#include "digruber/digruber/decision_point.hpp"
#include "digruber/net/rpc.hpp"
#include "digruber/net/sim_transport.hpp"

namespace digruber::digruber {
namespace {

net::ContainerProfile fast_profile() {
  net::ContainerProfile p;
  p.workers = 4;
  p.base_overhead = sim::Duration::millis(5);
  p.auth_cost = sim::Duration::zero();
  p.parse_cost_per_kb = sim::Duration::zero();
  p.serialize_cost_per_kb = sim::Duration::zero();
  return p;
}

/// One worker, `service_s` per request, a tiny queue, overload control on:
/// saturates (and starts NACKing) after two requests.
net::ContainerProfile saturated_profile(double service_s,
                                        std::size_t queue_limit = 1) {
  net::ContainerProfile p = fast_profile();
  p.workers = 1;
  p.queue_limit = queue_limit;
  p.base_overhead = sim::Duration::seconds(service_s);
  p.overload.enabled = true;
  return p;
}

struct Fixture {
  sim::Simulation sim;
  net::SimTransport transport;
  grid::VoCatalog catalog = grid::VoCatalog::uniform(2, 2);
  usla::AllocationTree tree;

  explicit Fixture(std::uint64_t seed = 1)
      : transport(sim, net::WanModel(net::WanParams{}, seed)) {
    tree = usla::AllocationTree::build({}, catalog).value();
  }

  DecisionPointOptions dp_options(net::ContainerProfile profile) {
    DecisionPointOptions o;
    o.profile = std::move(profile);
    o.exchange_interval = sim::Duration::minutes(1);
    o.eval_cost_per_site = sim::Duration::millis(0.1);
    return o;
  }

  std::vector<grid::SiteSnapshot> snapshots() {
    std::vector<grid::SiteSnapshot> out;
    for (std::uint64_t i = 0; i < 3; ++i) {
      grid::SiteSnapshot s;
      s.site = SiteId(i);
      s.total_cpus = 100;
      s.free_cpus = std::int32_t(100 - 10 * i);
      out.push_back(s);
    }
    return out;
  }

  std::vector<SiteId> sites() { return {SiteId(0), SiteId(1), SiteId(2)}; }

  grid::Job job() {
    grid::Job j;
    j.id = JobId(1);
    j.vo = VoId(0);
    j.group = GroupId(0);
    j.user = UserId(0);
    j.cpus = 1;
    return j;
  }

  GetSiteLoadsRequest query() {
    GetSiteLoadsRequest r;
    r.job = JobId(1);
    r.vo = VoId(0);
    r.group = GroupId(0);
    r.user = UserId(0);
    r.cpus = 1;
    return r;
  }

  std::unique_ptr<DiGruberClient> client(std::vector<NodeId> dps,
                                         ClientOptions options) {
    return std::make_unique<DiGruberClient>(
        sim, transport, ClientId(0), std::move(dps), sites(),
        gruber::make_selector("top-k", sim.rng().fork()), sim.rng().fork(),
        options);
  }
};

TEST(Overload, ErrorStringRoundtripsRetryAfter) {
  net::wire::OverloadNack nack;
  nack.reason = 1;
  nack.retry_after_us = 2500000;
  const std::string error = net::make_overload_error(nack);
  sim::Duration retry_after = sim::Duration::zero();
  ASSERT_TRUE(net::parse_overload_error(error, retry_after));
  EXPECT_EQ(retry_after, sim::Duration::micros(2500000));

  // Non-overload errors (including the legacy refusal) do not parse.
  EXPECT_FALSE(net::parse_overload_error("refused", retry_after));
  EXPECT_FALSE(net::parse_overload_error("timeout", retry_after));
  EXPECT_FALSE(net::parse_overload_error("", retry_after));
}

TEST(Overload, QueueFullNackIsTypedWithRetryAfter) {
  Fixture f;
  DecisionPoint a(f.sim, f.transport, DpId(0), f.catalog, f.tree,
                  f.dp_options(saturated_profile(10.0)));
  a.bootstrap(f.snapshots());

  net::RpcClient rpc(f.sim, f.transport);
  int served = 0, overloaded = 0, other = 0;
  sim::Duration last_retry_after = sim::Duration::zero();
  for (int i = 0; i < 4; ++i) {
    rpc.call<GetSiteLoadsRequest, GetSiteLoadsReply>(
        a.node(), kGetSiteLoads, f.query(), sim::Duration::seconds(90),
        [&](Result<GetSiteLoadsReply> result) {
          if (result.ok()) {
            ++served;
            return;
          }
          sim::Duration retry_after = sim::Duration::zero();
          if (net::parse_overload_error(result.error(), retry_after)) {
            ++overloaded;
            last_retry_after = retry_after;
          } else {
            ++other;
          }
        });
  }
  f.sim.run_until(sim::Time::from_seconds(60));
  // 1 in service + 1 queued; the other two bounce with a typed NACK.
  EXPECT_EQ(served, 2);
  EXPECT_EQ(overloaded, 2);
  EXPECT_EQ(other, 0);
  EXPECT_EQ(rpc.calls_overloaded(), 2u);
  EXPECT_GT(last_retry_after, sim::Duration::zero());
  EXPECT_EQ(a.server().container().refused(), 2u);
  a.stop();
}

TEST(Overload, WireDeadlineShedsDoomedRequestAtAdmission) {
  Fixture f;
  DecisionPoint a(f.sim, f.transport, DpId(0), f.catalog, f.tree,
                  f.dp_options(saturated_profile(10.0, /*queue_limit=*/64)));
  a.bootstrap(f.snapshots());

  net::RpcClient rpc(f.sim, f.transport);
  // First request seeds a ~10 s service estimate and occupies the worker.
  bool first_ok = false;
  rpc.call<GetSiteLoadsRequest, GetSiteLoadsReply>(
      a.node(), kGetSiteLoads, f.query(), sim::Duration::seconds(90),
      [&](Result<GetSiteLoadsReply> result) { first_ok = result.ok(); });

  // Issued one second later with a 2 s deadline: predicted sojourn (~10 s)
  // already overruns it, so admission sheds instead of queueing.
  bool doomed_overloaded = false;
  f.sim.schedule_at(sim::Time::from_seconds(1), [&] {
    net::RpcClient::CallOptions options;
    options.deadline = f.sim.now() + sim::Duration::seconds(2);
    rpc.call<GetSiteLoadsRequest, GetSiteLoadsReply>(
        a.node(), kGetSiteLoads, f.query(), sim::Duration::seconds(90), options,
        [&](Result<GetSiteLoadsReply> result) {
          sim::Duration retry_after = sim::Duration::zero();
          doomed_overloaded =
              !result.ok() && net::parse_overload_error(result.error(), retry_after);
        });
  });

  f.sim.run_until(sim::Time::from_seconds(60));
  EXPECT_TRUE(first_ok);
  EXPECT_TRUE(doomed_overloaded);
  EXPECT_EQ(a.server().container().shed_deadline(), 1u);
  EXPECT_EQ(a.queries_served(), 1u);
  a.stop();
}

TEST(Overload, EmptyRetryBudgetDegradesToFallbackWithoutTrippingBreaker) {
  Fixture f;
  DecisionPoint a(f.sim, f.transport, DpId(0), f.catalog, f.tree,
                  f.dp_options(saturated_profile(30.0)));
  a.bootstrap(f.snapshots());

  // Saturate: one raw request in service, one queued.
  net::RpcClient rpc(f.sim, f.transport);
  for (int i = 0; i < 2; ++i) {
    rpc.call<GetSiteLoadsRequest, GetSiteLoadsReply>(
        a.node(), kGetSiteLoads, f.query(), sim::Duration::seconds(300),
        [](Result<GetSiteLoadsReply>) {});
  }

  ClientOptions options;
  options.overload_aware = true;
  options.attempt_timeout = sim::Duration::seconds(10);
  options.retry_budget_capacity = 0.0;  // no tokens, ever
  options.retry_budget_refill = 0.0;
  auto client = f.client({a.node()}, options);

  bool done = false;
  f.sim.schedule_at(sim::Time::from_seconds(1), [&] {
    client->schedule(f.job(), [&](grid::Job, QueryOutcome outcome) {
      done = true;
      EXPECT_FALSE(outcome.handled_by_gruber);
    });
  });
  f.sim.run_until(sim::Time::from_seconds(120));
  ASSERT_TRUE(done);
  EXPECT_EQ(client->overload_nacks(), 1u);
  EXPECT_EQ(client->retries_budget_denied(), 1u);
  EXPECT_EQ(client->fallbacks(), 1u);
  // The NACK proves the decision point is alive: no breaker trip.
  EXPECT_EQ(client->breaker_trips(), 0u);
  a.stop();
}

TEST(Overload, RetryAfterHintDelaysRetryUntilQueueDrains) {
  Fixture f;
  net::ContainerProfile profile = saturated_profile(10.0);
  profile.overload.min_retry_after = sim::Duration::seconds(20);
  DecisionPoint a(f.sim, f.transport, DpId(0), f.catalog, f.tree,
                  f.dp_options(profile));
  a.bootstrap(f.snapshots());

  // Two raw requests hold the worker + queue slot until t=20 s.
  net::RpcClient rpc(f.sim, f.transport);
  for (int i = 0; i < 2; ++i) {
    rpc.call<GetSiteLoadsRequest, GetSiteLoadsReply>(
        a.node(), kGetSiteLoads, f.query(), sim::Duration::seconds(300),
        [](Result<GetSiteLoadsReply>) {});
  }

  ClientOptions options;
  options.overload_aware = true;
  options.attempt_timeout = sim::Duration::seconds(30);
  auto client = f.client({a.node()}, options);

  bool done = false;
  f.sim.schedule_at(sim::Time::from_seconds(1), [&] {
    client->schedule(f.job(), [&](grid::Job, QueryOutcome outcome) {
      done = true;
      // The retry lands after the 20 s retry_after, when the backlog has
      // drained, and is served normally.
      EXPECT_TRUE(outcome.handled_by_gruber);
      EXPECT_GT(outcome.response.to_seconds(), 20.0);
    });
  });
  f.sim.run_until(sim::Time::from_seconds(120));
  ASSERT_TRUE(done);
  EXPECT_EQ(client->overload_nacks(), 1u);
  EXPECT_EQ(client->retry_after_honored(), 1u);
  EXPECT_EQ(client->fallbacks(), 0u);
  a.stop();
}

TEST(Overload, PowerOfTwoChoicesRoutesAroundSaturatedDp) {
  Fixture f;
  // a is wedged for the whole test (200 s service, full queue); b is fast.
  net::ContainerProfile wedged = saturated_profile(200.0);
  wedged.overload.max_retry_after = sim::Duration::seconds(5);
  DecisionPointOptions a_options = f.dp_options(wedged);
  a_options.advertise_load = true;
  net::ContainerProfile fast = fast_profile();
  fast.overload.enabled = true;
  DecisionPointOptions b_options = f.dp_options(fast);
  b_options.advertise_load = true;

  DecisionPoint a(f.sim, f.transport, DpId(0), f.catalog, f.tree, a_options);
  DecisionPoint b(f.sim, f.transport, DpId(1), f.catalog, f.tree, b_options);
  a.bootstrap(f.snapshots());
  b.bootstrap(f.snapshots());
  connect({&a, &b}, Overlay::kMesh);

  net::RpcClient rpc(f.sim, f.transport);
  for (int i = 0; i < 2; ++i) {
    rpc.call<GetSiteLoadsRequest, GetSiteLoadsReply>(
        a.node(), kGetSiteLoads, f.query(), sim::Duration::seconds(500),
        [](Result<GetSiteLoadsReply>) {});
  }

  ClientOptions options;
  options.overload_aware = true;
  options.attempt_timeout = sim::Duration::seconds(10);
  auto client = f.client({a.node(), b.node()}, options);

  int handled = 0;
  int issued = 0;
  std::function<void()> next = [&] {
    client->schedule(f.job(), [&](grid::Job, QueryOutcome outcome) {
      if (outcome.handled_by_gruber) ++handled;
      if (++issued < 5) next();
    });
  };
  f.sim.schedule_at(sim::Time::from_seconds(1), [&] { next(); });
  f.sim.run_until(sim::Time::from_seconds(150));

  // Every query lands: either p2c picked b outright, or a's NACK penalized
  // its score and the (budgeted) retry went to b.
  EXPECT_EQ(issued, 5);
  EXPECT_EQ(handled, 5);
  EXPECT_GE(client->p2c_decisions(), 5u);
  EXPECT_EQ(b.queries_served(), 5u);
  // a served only the wedge's own first raw request, none of the client's.
  EXPECT_EQ(a.queries_served(), 1u);
  EXPECT_EQ(client->fallbacks(), 0u);
  a.stop();
  b.stop();
}

}  // namespace
}  // namespace digruber::digruber
