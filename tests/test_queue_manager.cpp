#include "digruber/gruber/queue_manager.hpp"

#include <gtest/gtest.h>

namespace digruber::gruber {
namespace {

struct Fixture {
  sim::Simulation sim;
  grid::VoCatalog catalog = grid::VoCatalog::uniform(1, 1);
  usla::AllocationTree tree;
  GruberEngine engine{catalog, tree};
  std::vector<grid::Job> dispatched;

  Fixture(std::int32_t free_cpus = 100) {
    const auto agreement = usla::parse_agreement(
        "agreement t\nterm a: grid -> vo:vo0 cpu 50+\n");
    // `engine` holds references to `catalog` and `tree`; refreshing the
    // tree's contents in place keeps them valid.
    tree = usla::AllocationTree::build({agreement.value()}, catalog).value();
    grid::SiteSnapshot snap;
    snap.site = SiteId(0);
    snap.total_cpus = 100;
    snap.free_cpus = free_cpus;
    engine.view().bootstrap({snap});
  }

  QueueManager::Dispatch dispatcher() {
    return [this](grid::Job job, SiteId site,
                  std::function<void(const grid::Job&)> done) {
      job.site = site;
      dispatched.push_back(job);
      // Jobs "complete" after their runtime.
      sim.schedule_after(job.runtime, [job, done] { done(job); });
    };
  }

  grid::Job job(std::uint64_t id, int cpus = 1) {
    grid::Job j;
    j.id = JobId(id);
    j.vo = VoId(0);
    j.group = GroupId(0);
    j.user = UserId(0);
    j.cpus = cpus;
    j.runtime = sim::Duration::seconds(600);
    return j;
  }
};

TEST(QueueManager, PacesDispatchesByBurstAndInterval) {
  Fixture f;
  QueueManager::Options options;
  options.burst = 2;
  options.interval = sim::Duration::seconds(10);
  QueueManager qm(f.sim, f.engine, make_selector("least-used", Rng(1)),
                  f.dispatcher(), options);
  for (std::uint64_t i = 0; i < 7; ++i) qm.enqueue(f.job(i));

  f.sim.run_until(sim::Time::from_seconds(5));
  EXPECT_EQ(f.dispatched.size(), 0u);  // first pump at t=10
  f.sim.run_until(sim::Time::from_seconds(11));
  EXPECT_EQ(f.dispatched.size(), 2u);
  f.sim.run_until(sim::Time::from_seconds(31));
  EXPECT_EQ(f.dispatched.size(), 6u);
  f.sim.run_until(sim::Time::from_seconds(41));
  EXPECT_EQ(f.dispatched.size(), 7u);
  EXPECT_EQ(qm.pending(), 0u);
  qm.stop();
}

TEST(QueueManager, EnforcesVoShareByHolding) {
  // Site has 100 CPUs, vo0 is capped at 50. Jobs of 30 CPUs: after one is
  // running, the next would exceed the share -> the queue holds.
  Fixture f;
  QueueManager::Options options;
  options.burst = 10;
  options.interval = sim::Duration::seconds(10);
  QueueManager qm(f.sim, f.engine, make_selector("least-used", Rng(1)),
                  f.dispatcher(), options);
  qm.enqueue(f.job(1, 30));
  qm.enqueue(f.job(2, 30));

  f.sim.run_until(sim::Time::from_seconds(60));
  EXPECT_EQ(f.dispatched.size(), 1u);  // second held: only 20 CPUs of share left
  EXPECT_EQ(qm.pending(), 1u);
  EXPECT_GT(qm.starved(), 0u);

  // After the first job's 600 s runtime its share frees up again.
  f.sim.run_until(sim::Time::from_seconds(620));
  EXPECT_EQ(f.dispatched.size(), 2u);
  qm.stop();
}

TEST(QueueManager, RespectsMaxInFlight) {
  Fixture f;
  QueueManager::Options options;
  options.burst = 10;
  options.interval = sim::Duration::seconds(5);
  options.max_in_flight = 3;
  QueueManager qm(f.sim, f.engine, make_selector("least-used", Rng(1)),
                  f.dispatcher(), options);
  for (std::uint64_t i = 0; i < 8; ++i) qm.enqueue(f.job(i));
  f.sim.run_until(sim::Time::from_seconds(100));
  EXPECT_EQ(qm.in_flight(), 3);
  EXPECT_EQ(f.dispatched.size(), 3u);
  // Completions at t=600+ free slots.
  f.sim.run_until(sim::Time::from_seconds(650));
  EXPECT_GT(f.dispatched.size(), 3u);
  qm.stop();
}

TEST(QueueManager, CountsCompletions) {
  Fixture f;
  QueueManager::Options options;
  options.burst = 5;
  options.interval = sim::Duration::seconds(5);
  QueueManager qm(f.sim, f.engine, make_selector("least-used", Rng(1)),
                  f.dispatcher(), options);
  for (std::uint64_t i = 0; i < 4; ++i) qm.enqueue(f.job(i));
  f.sim.run_until(sim::Time::from_seconds(1000));
  EXPECT_EQ(qm.dispatched(), 4u);
  EXPECT_EQ(qm.completed(), 4u);
  EXPECT_EQ(qm.in_flight(), 0);
  qm.stop();
}

}  // namespace
}  // namespace digruber::gruber
