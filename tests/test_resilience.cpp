// Scenario-level fault injection: deterministic replay of faulted runs,
// inertness of the empty plan, and end-to-end failover/catch-up effects.
#include <gtest/gtest.h>

#include "digruber/experiments/scenario.hpp"

namespace digruber::experiments {
namespace {

ScenarioConfig small_config() {
  ScenarioConfig cfg;
  cfg.name = "resilience-test";
  cfg.seed = 11;
  cfg.n_dps = 3;
  cfg.n_clients = 12;
  cfg.duration = sim::Duration::minutes(10);
  cfg.grid_scale = 1;
  cfg.workload.n_vos = 3;
  cfg.workload.groups_per_vo = 2;
  return cfg;
}

ScenarioConfig faulted_config() {
  ScenarioConfig cfg = small_config();
  cfg.fault_plan.crash(sim::Time::from_seconds(120), 0)
      .restart(sim::Time::from_seconds(270), 0)
      .partition(sim::Time::from_seconds(360), {{0}, {1, 2}})
      .heal(sim::Time::from_seconds(450));
  return cfg;
}

TEST(Resilience, FaultedRunReplaysBitIdentically) {
  const ScenarioResult a = run_scenario(faulted_config());
  const ScenarioResult b = run_scenario(faulted_config());

  // The full query trace — every (client, dp, time, response, handled)
  // tuple — must match, not just the aggregates.
  ASSERT_EQ(a.trace.size(), b.trace.size());
  EXPECT_EQ(a.trace.entries(), b.trace.entries());
  EXPECT_EQ(a.sim_events, b.sim_events);
  EXPECT_EQ(a.jobs_completed, b.jobs_completed);
  EXPECT_DOUBLE_EQ(a.all.response_s, b.all.response_s);
  EXPECT_DOUBLE_EQ(a.all.accuracy, b.all.accuracy);

  EXPECT_EQ(a.resilience.failovers, b.resilience.failovers);
  EXPECT_EQ(a.resilience.breaker_trips, b.resilience.breaker_trips);
  EXPECT_EQ(a.resilience.resync_records, b.resilience.resync_records);
  EXPECT_EQ(a.resilience.drops_partition, b.resilience.drops_partition);
  EXPECT_EQ(a.resilience.drops_unknown_destination,
            b.resilience.drops_unknown_destination);
}

TEST(Resilience, EmptyPlanIsInert) {
  // No faults -> the failover machinery must stay disengaged: zero
  // resilience counters and the exact event count of a plain run.
  const ScenarioResult plain = run_scenario(small_config());
  EXPECT_EQ(plain.resilience.failovers, 0u);
  EXPECT_EQ(plain.resilience.breaker_trips, 0u);
  EXPECT_EQ(plain.resilience.all_dps_down_fallbacks, 0u);
  EXPECT_EQ(plain.resilience.dp_restarts, 0u);
  EXPECT_EQ(plain.resilience.resync_records, 0u);
  EXPECT_EQ(plain.resilience.drops_partition, 0u);
  EXPECT_EQ(plain.resilience.drops_unknown_destination, 0u);

  const ScenarioResult again = run_scenario(small_config());
  EXPECT_EQ(plain.sim_events, again.sim_events);
  EXPECT_EQ(plain.trace.entries(), again.trace.entries());
}

TEST(Resilience, FaultsActuallyPerturbTheRun) {
  const ScenarioResult plain = run_scenario(small_config());
  const ScenarioResult faulted = run_scenario(faulted_config());

  EXPECT_NE(plain.sim_events, faulted.sim_events);
  EXPECT_EQ(faulted.resilience.dp_restarts, 1u);
  ASSERT_EQ(faulted.dps.size(), 3u);
  EXPECT_EQ(faulted.dps[0].restarts, 1u);
  // The restarted point re-learned state from its two mesh neighbors.
  EXPECT_GT(faulted.resilience.resync_records, 0u);
  EXPECT_GT(faulted.resilience.catchups_served, 0u);
  // The partition and the crash both dropped packets, by distinct causes.
  EXPECT_GT(faulted.resilience.drops_partition, 0u);
  EXPECT_GT(faulted.resilience.drops_unknown_destination, 0u);
  // Clients failed over instead of falling back blind: availability held.
  EXPECT_GT(faulted.resilience.failovers, 0u);
  EXPECT_GT(faulted.handled.request_share, 0.8);
}

TEST(Resilience, PlanNamingMissingDpIsRejected) {
  ScenarioConfig cfg = small_config();
  cfg.fault_plan.crash(sim::Time::from_seconds(60), 7);  // only 3 dps
  EXPECT_THROW(run_scenario(cfg), std::invalid_argument);
}

TEST(Resilience, MembershipChurnRunJoinsLeavesAndQuarantines) {
  ScenarioConfig cfg = small_config();
  cfg.membership = true;
  cfg.exchange_interval = sim::Duration::seconds(15);
  cfg.membership_options.suspect_after = 1.5;
  cfg.membership_options.dead_after = 2.0;
  cfg.membership_options.join_snapshot_timeout = sim::Duration::seconds(5);
  cfg.membership_options.join_retry_backoff = sim::Duration::seconds(5);
  cfg.fault_plan.crash(sim::Time::from_seconds(120), 0)
      .join(sim::Time::from_seconds(240))
      .leave(sim::Time::from_seconds(360), 1);
  const ScenarioResult r = run_scenario(cfg);

  // The crash was detected (dp0 silent well past the 45 s budget), the
  // join completed via snapshot bootstrap, and the leave was observed.
  EXPECT_GT(r.membership.deaths_declared, 0u);
  EXPECT_EQ(r.membership.joins_started, 1u);
  EXPECT_EQ(r.membership.joins_completed, 1u);
  EXPECT_GT(r.membership.snapshots_served, 0u);
  EXPECT_GT(r.membership.leaves_observed, 0u);

  // The joiner is a fourth decision point that reached serving and took
  // real traffic; the departed one drained.
  ASSERT_EQ(r.dps.size(), 4u);
  EXPECT_GE(r.dps[3].serving_since_s, 240.0);
  EXPECT_TRUE(r.dps[3].serving);
  EXPECT_TRUE(r.dps[1].left);
  EXPECT_FALSE(r.dps[1].serving);

  // Clients re-routed off the dead/left points via membership updates.
  EXPECT_GT(r.membership.client_updates_applied, 0u);
  EXPECT_GT(r.membership.client_dps_added, 0u);
  EXPECT_GT(r.membership.client_dps_quarantined, 0u);

  // Conservation still holds under churn (the chaos soak's I1/I2).
  EXPECT_EQ(r.clients.queries, r.clients.handled + r.clients.fallbacks);
  for (const DpStats& dp : r.dps) {
    EXPECT_EQ(dp.submitted, dp.completed + dp.refused + dp.shed_deadline +
                                dp.aborted + dp.queue_residue);
  }
}

TEST(Resilience, ChurnVerbsRequireMembership) {
  ScenarioConfig cfg = small_config();
  cfg.fault_plan.join(sim::Time::from_seconds(120));
  EXPECT_THROW(run_scenario(cfg), std::invalid_argument);

  ScenarioConfig leave_cfg = small_config();
  leave_cfg.fault_plan.leave(sim::Time::from_seconds(120), 0);
  EXPECT_THROW(run_scenario(leave_cfg), std::invalid_argument);
}

TEST(Resilience, SamplesCarryIssueTimestamps) {
  const ScenarioResult r = run_scenario(small_config());
  ASSERT_EQ(r.samples.size(), r.all.requests);
  double last = 0.0;
  bool monotone = true;
  for (const auto& sample : r.samples) {
    if (sample.issued_s < last) monotone = false;
    last = sample.issued_s;
  }
  // Samples are appended in completion order; issue times must at least
  // be within the run window.
  EXPECT_GE(r.samples.front().issued_s, 0.0);
  EXPECT_LE(last, r.config.duration.to_seconds() + 60.0);
  (void)monotone;  // completion order need not equal issue order
}

}  // namespace
}  // namespace digruber::experiments
