// Storage and network USLA resources: site storage accounting, storage
// headroom evaluation, storage-aware candidate filtering, and
// network-share-scaled Euryale staging.
#include <gtest/gtest.h>

#include "digruber/gruber/engine.hpp"
#include "digruber/usla/tree.hpp"

namespace digruber {
namespace {

constexpr std::uint64_t kGiB = 1ull << 30;

grid::Job storage_job(std::uint64_t id, std::uint64_t vo, std::uint64_t in_bytes,
                      std::uint64_t out_bytes, double runtime_s = 100) {
  grid::Job j;
  j.id = JobId(id);
  j.vo = VoId(vo);
  j.group = GroupId(vo);
  j.user = UserId(vo);
  j.cpus = 1;
  j.runtime = sim::Duration::seconds(runtime_s);
  j.input_bytes = in_bytes;
  j.output_bytes = out_bytes;
  return j;
}

TEST(SiteStorage, DefaultProvisioningScalesWithCpus) {
  sim::Simulation sim;
  grid::Site site(sim, SiteId(0), "s", {{8, 1.0}});
  EXPECT_EQ(site.total_storage(), 8 * grid::kDefaultStoragePerCpu);
  EXPECT_EQ(site.free_storage(), site.total_storage());
}

TEST(SiteStorage, ReservedWhileJobPresent) {
  sim::Simulation sim;
  grid::Site site(sim, SiteId(0), "s", {{4, 1.0}}, 10 * kGiB);
  site.submit(storage_job(1, 2, 3 * kGiB, 1 * kGiB), [](const grid::Job&) {});
  EXPECT_EQ(site.free_storage(), 6 * kGiB);
  EXPECT_EQ(site.storage_for_vo(VoId(2)), 4 * kGiB);
  sim.run();
  EXPECT_EQ(site.free_storage(), 10 * kGiB);
  EXPECT_EQ(site.storage_for_vo(VoId(2)), 0u);
}

TEST(SiteStorage, JobWaitsForStorage) {
  sim::Simulation sim;
  grid::Site site(sim, SiteId(0), "s", {{4, 1.0}}, 10 * kGiB);
  // First job holds 8 GiB for 100 s; second needs 4 GiB and must queue
  // even though CPUs are free.
  grid::Job second_done;
  site.submit(storage_job(1, 0, 8 * kGiB, 0, 100), [](const grid::Job&) {});
  site.submit(storage_job(2, 0, 4 * kGiB, 0, 50), [&](const grid::Job& j) {
    second_done = j;
  });
  EXPECT_EQ(site.queued_jobs(), 1);
  sim.run();
  EXPECT_DOUBLE_EQ(second_done.started.to_seconds(), 100.0);
  EXPECT_DOUBLE_EQ(second_done.queue_time().to_seconds(), 100.0);
}

TEST(SiteStorage, ImpossibleStorageFailsImmediately) {
  sim::Simulation sim;
  grid::Site site(sim, SiteId(0), "s", {{4, 1.0}}, 2 * kGiB);
  grid::Job result;
  site.submit(storage_job(1, 0, 5 * kGiB, 0), [&](const grid::Job& j) { result = j; });
  EXPECT_EQ(result.state, grid::JobState::kFailed);
}

TEST(SiteStorage, SnapshotCarriesStorageState) {
  sim::Simulation sim;
  grid::Site site(sim, SiteId(0), "s", {{4, 1.0}}, 10 * kGiB);
  site.submit(storage_job(1, 3, 2 * kGiB, 1 * kGiB), [](const grid::Job&) {});
  const grid::SiteSnapshot snap = site.snapshot();
  EXPECT_EQ(snap.total_storage_bytes, 10 * kGiB);
  EXPECT_EQ(snap.free_storage_bytes, 7 * kGiB);
  EXPECT_EQ(snap.storage_per_vo.at(VoId(3)), 3 * kGiB);
}

struct UslaFixture {
  grid::VoCatalog catalog = grid::VoCatalog::uniform(2, 1);
  usla::AllocationTree tree;

  UslaFixture() {
    const auto agreement = usla::parse_agreement(
        "agreement t\n"
        "term cpu0: grid -> vo:vo0 cpu 50+\n"
        "term sto0: grid -> vo:vo0 storage 20+\n"
        "term net0: grid -> vo:vo0 network 25+\n");
    tree = usla::AllocationTree::build({agreement.value()}, catalog).value();
  }
};

TEST(StorageUsla, HeadroomFollowsStorageShare) {
  UslaFixture f;
  const usla::UslaEvaluator evaluator(f.tree, f.catalog);
  grid::SiteSnapshot snap;
  snap.site = SiteId(0);
  snap.total_cpus = 100;
  snap.free_cpus = 100;
  snap.total_storage_bytes = 100 * kGiB;
  snap.free_storage_bytes = 100 * kGiB;

  // vo0 capped at 20% of storage.
  EXPECT_EQ(evaluator.storage_headroom(snap, VoId(0)), 20 * kGiB);
  // vo1 has no storage rule -> open.
  EXPECT_EQ(evaluator.storage_headroom(snap, VoId(1)), 100 * kGiB);

  snap.storage_per_vo[VoId(0)] = 15 * kGiB;
  EXPECT_EQ(evaluator.storage_headroom(snap, VoId(0)), 5 * kGiB);
  snap.storage_per_vo[VoId(0)] = 30 * kGiB;
  EXPECT_EQ(evaluator.storage_headroom(snap, VoId(0)), 0u);

  // Bounded by actually free storage.
  snap.storage_per_vo[VoId(0)] = 0;
  snap.free_storage_bytes = 3 * kGiB;
  EXPECT_EQ(evaluator.storage_headroom(snap, VoId(0)), 3 * kGiB);
}

TEST(NetworkUsla, CapFraction) {
  UslaFixture f;
  const usla::UslaEvaluator evaluator(f.tree, f.catalog);
  EXPECT_DOUBLE_EQ(evaluator.network_cap_fraction(VoId(0)), 0.25);
  EXPECT_DOUBLE_EQ(evaluator.network_cap_fraction(VoId(1)), 1.0);
}

TEST(StorageUsla, EngineFiltersCandidatesByStorage) {
  UslaFixture f;
  gruber::GruberEngine engine(f.catalog, f.tree);
  grid::SiteSnapshot small;
  small.site = SiteId(0);
  small.total_cpus = 100;
  small.free_cpus = 100;
  small.total_storage_bytes = 10 * kGiB;
  small.free_storage_bytes = 10 * kGiB;
  grid::SiteSnapshot big = small;
  big.site = SiteId(1);
  big.total_storage_bytes = 1000 * kGiB;
  big.free_storage_bytes = 1000 * kGiB;
  engine.view().bootstrap({small, big});

  // vo0's 20% storage share: 2 GiB at the small site, 200 GiB at the big
  // one. A job staging 5 GiB only fits at the big site.
  const auto candidates =
      engine.candidates(storage_job(1, 0, 4 * kGiB, 1 * kGiB), sim::Time::zero());
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_EQ(candidates[0].site, SiteId(1));

  // A compute-only job fits at both.
  EXPECT_EQ(engine.candidates(storage_job(2, 0, 0, 0), sim::Time::zero()).size(), 2u);
}

TEST(UslaDocument, StorageAndNetworkTermsParse) {
  const auto parsed = usla::parse_agreement(
      "agreement t\n"
      "term a: grid -> vo:cms storage 40+\n"
      "term b: grid -> vo:cms network 15-\n");
  ASSERT_TRUE(parsed.ok()) << parsed.error();
  EXPECT_EQ(parsed.value().terms[0].resource, usla::ResourceKind::kStorage);
  EXPECT_EQ(parsed.value().terms[1].resource, usla::ResourceKind::kNetwork);
  // Same consumer, different resources: not a duplicate.
  EXPECT_TRUE(usla::validate(parsed.value()).ok());
}

}  // namespace
}  // namespace digruber
