#include "digruber/common/result.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>

namespace digruber {
namespace {

TEST(Result, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(bool(r));
  EXPECT_EQ(r.value(), 42);
}

TEST(Result, HoldsError) {
  const auto r = Result<int>::failure("boom");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error(), "boom");
}

TEST(Result, MoveOnlyPayload) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(5));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> owned = std::move(r).value();
  EXPECT_EQ(*owned, 5);
}

TEST(Result, MutableAccess) {
  Result<std::string> r(std::string("abc"));
  r.value() += "d";
  EXPECT_EQ(r.value(), "abcd");
}

TEST(Status, DefaultIsOk) {
  Status<> s;
  EXPECT_TRUE(s.ok());
  EXPECT_TRUE(bool(s));
}

TEST(Status, Failure) {
  const auto s = Status<>::failure("bad");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.error(), "bad");
}

TEST(Result, CustomErrorType) {
  struct Err {
    int code;
  };
  const auto r = Result<int, Err>::failure(Err{7});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, 7);
}

}  // namespace
}  // namespace digruber
