#include "digruber/common/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace digruber {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, ForkIsIndependentOfParentDraws) {
  // fork() then parent draws must not perturb the child's stream.
  Rng parent1(7);
  Rng child1 = parent1.fork();
  Rng parent2(7);
  Rng child2 = parent2.fork();
  for (int i = 0; i < 100; ++i) (void)parent2();  // extra parent draws
  for (int i = 0; i < 100; ++i) EXPECT_EQ(child1(), child2());
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanIsHalf) {
  Rng rng(5);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIndexCoversRangeExactly) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = rng.uniform_index(7);
    ASSERT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(13);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.uniform_int(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(17);
  int hits = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(double(hits) / n, 0.3, 0.01);
}

TEST(Rng, ExponentialMean) {
  Rng rng(19);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(4.0);
  EXPECT_NEAR(sum / n, 4.0, 0.1);
}

TEST(Rng, NormalMoments) {
  Rng rng(23);
  double sum = 0, ss = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(10.0, 2.0);
    sum += x;
    ss += x * x;
  }
  const double mean = sum / n;
  const double var = ss / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(Rng, LognormalMeanCv) {
  Rng rng(29);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.lognormal_mean_cv(100.0, 0.5);
  EXPECT_NEAR(sum / n, 100.0, 2.0);
}

TEST(Rng, ParetoBoundedBelowByScale) {
  Rng rng(31);
  for (int i = 0; i < 10000; ++i) ASSERT_GE(rng.pareto(2.0, 1.5), 2.0);
}

TEST(Rng, ZipfSkewsTowardLowRanks) {
  Rng rng(37);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 20000; ++i) ++counts[rng.zipf(10, 1.2)];
  EXPECT_GT(counts[0], counts[4]);
  EXPECT_GT(counts[4], counts[9]);
}

TEST(Rng, ZipfZeroExponentIsUniform) {
  Rng rng(41);
  std::vector<int> counts(5, 0);
  const int n = 50000;
  for (int i = 0; i < n; ++i) ++counts[rng.zipf(5, 0.0)];
  for (const int c : counts) EXPECT_NEAR(double(c) / n, 0.2, 0.02);
}

TEST(AliasSampler, MatchesWeights) {
  Rng rng(43);
  const std::vector<double> weights{1.0, 2.0, 3.0, 4.0};
  AliasSampler sampler(weights);
  std::vector<int> counts(4, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[sampler.sample(rng)];
  for (std::size_t k = 0; k < 4; ++k) {
    EXPECT_NEAR(double(counts[k]) / n, weights[k] / 10.0, 0.01) << "bucket " << k;
  }
}

TEST(AliasSampler, ZeroWeightNeverSampled) {
  Rng rng(47);
  AliasSampler sampler({0.0, 1.0, 0.0});
  for (int i = 0; i < 10000; ++i) ASSERT_EQ(sampler.sample(rng), 1u);
}

TEST(AliasSampler, RejectsBadInput) {
  EXPECT_THROW(AliasSampler({}), std::invalid_argument);
  EXPECT_THROW(AliasSampler({-1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW(AliasSampler({0.0, 0.0}), std::invalid_argument);
}

/// Property sweep: uniform_index is unbiased for a range of moduli.
class RngIndexProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngIndexProperty, ApproximatelyUniform) {
  const std::uint64_t n = GetParam();
  Rng rng(100 + n);
  std::vector<int> counts(n, 0);
  const int draws = 20000 * int(n);
  for (int i = 0; i < draws; ++i) ++counts[rng.uniform_index(n)];
  for (std::uint64_t k = 0; k < n; ++k) {
    EXPECT_NEAR(double(counts[k]) / draws, 1.0 / double(n), 0.01);
  }
}

INSTANTIATE_TEST_SUITE_P(Moduli, RngIndexProperty,
                         ::testing::Values(2, 3, 5, 8, 13));

}  // namespace
}  // namespace digruber
