#include "digruber/net/rpc.hpp"

#include <gtest/gtest.h>

#include "digruber/net/sim_transport.hpp"

namespace digruber::net {
namespace {

struct EchoRequest {
  std::uint64_t value = 0;
  std::string text;
  template <class A>
  void serialize(A& ar) { ar & value & text; }
};

struct EchoReply {
  std::uint64_t value = 0;
  std::string text;
  template <class A>
  void serialize(A& ar) { ar & value & text; }
};

ContainerProfile fast_profile(std::size_t queue_limit = 4096) {
  ContainerProfile p;
  p.workers = 2;
  p.queue_limit = queue_limit;
  p.base_overhead = sim::Duration::millis(10);
  p.auth_cost = sim::Duration::zero();
  p.parse_cost_per_kb = sim::Duration::zero();
  p.serialize_cost_per_kb = sim::Duration::zero();
  return p;
}

struct Fixture {
  sim::Simulation sim;
  SimTransport transport;
  RpcServer server;
  RpcClient client;

  explicit Fixture(ContainerProfile profile = fast_profile())
      : transport(sim, WanModel(WanParams{}, 17)),
        server(sim, transport, std::move(profile)),
        client(sim, transport) {
    server.register_typed<EchoRequest, EchoReply>(
        1, [](const EchoRequest& request, NodeId) {
          EchoReply reply;
          reply.value = request.value + 1;
          reply.text = request.text;
          return std::make_pair(reply, sim::Duration::millis(5));
        });
  }
};

TEST(Rpc, CallRoundtrip) {
  Fixture f;
  EchoRequest request;
  request.value = 41;
  request.text = "hello";
  bool done = false;
  f.client.call<EchoRequest, EchoReply>(
      f.server.node(), 1, request, sim::Duration::seconds(30),
      [&](Result<EchoReply> result) {
        ASSERT_TRUE(result.ok()) << result.error();
        EXPECT_EQ(result.value().value, 42u);
        EXPECT_EQ(result.value().text, "hello");
        done = true;
      });
  f.sim.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(f.server.requests_received(), 1u);
  EXPECT_EQ(f.client.calls_timed_out(), 0u);
}

TEST(Rpc, TimeoutFiresWhenServerSlow) {
  ContainerProfile slow = fast_profile();
  slow.workers = 1;
  slow.base_overhead = sim::Duration::seconds(100);
  Fixture f(slow);
  bool failed = false;
  f.client.call<EchoRequest, EchoReply>(
      f.server.node(), 1, EchoRequest{}, sim::Duration::seconds(5),
      [&](Result<EchoReply> result) {
        EXPECT_FALSE(result.ok());
        EXPECT_EQ(result.error(), "timeout");
        failed = true;
      });
  f.sim.run();
  EXPECT_TRUE(failed);
  EXPECT_EQ(f.client.calls_timed_out(), 1u);
  // The server still completed the work (wasted effort, as on a real grid).
  EXPECT_EQ(f.server.container().completed(), 1u);
}

TEST(Rpc, LateReplyAfterTimeoutDiscarded) {
  ContainerProfile slow = fast_profile();
  slow.base_overhead = sim::Duration::seconds(10);
  Fixture f(slow);
  int callbacks = 0;
  f.client.call<EchoRequest, EchoReply>(
      f.server.node(), 1, EchoRequest{}, sim::Duration::seconds(1),
      [&](Result<EchoReply>) { ++callbacks; });
  f.sim.run();
  EXPECT_EQ(callbacks, 1);  // exactly once, the timeout
  EXPECT_EQ(f.client.calls_timed_out(), 1u);
  EXPECT_EQ(f.client.replies_discarded_late(), 1u);
}

TEST(Rpc, LossyWanTimeoutsAndLateRepliesAccounted) {
  // A lossy WAN plus a server slower than the call deadline: every call
  // either succeeds or times out (exactly one callback each), and replies
  // that beat the loss coin but miss the deadline land in the late-discard
  // counter instead of resurrecting a completed call.
  sim::Simulation sim;
  WanParams params;
  params.loss_rate = 0.3;
  SimTransport transport(sim, WanModel(params, 23));
  ContainerProfile slow = fast_profile();
  slow.base_overhead = sim::Duration::seconds(3);
  RpcServer server(sim, transport, slow);
  server.register_typed<EchoRequest, EchoReply>(
      1, [](const EchoRequest& request, NodeId) {
        return std::make_pair(EchoReply{request.value + 1, request.text},
                              sim::Duration::zero());
      });
  RpcClient client(sim, transport);

  const int n = 50;
  int ok = 0, timed_out = 0;
  for (int i = 0; i < n; ++i) {
    sim.schedule_at(sim::Time::from_seconds(20.0 * i), [&, i] {
      EchoRequest request;
      request.value = std::uint64_t(i);
      // 3.2 s deadline vs 3 s service time: distant-node jitter decides
      // whether a surviving reply is on time or discarded late.
      client.call<EchoRequest, EchoReply>(
          server.node(), 1, request, sim::Duration::millis(3200),
          [&](Result<EchoReply> result) {
            if (result.ok()) {
              ++ok;
            } else {
              EXPECT_EQ(result.error(), "timeout");
              ++timed_out;
            }
          });
    });
  }
  sim.run();

  EXPECT_EQ(ok + timed_out, n);  // exactly one callback per call
  EXPECT_GT(ok, 0);
  EXPECT_GT(timed_out, 0);
  EXPECT_EQ(client.calls_timed_out(), std::uint64_t(timed_out));
  EXPECT_EQ(client.calls_in_flight(), 0u);
  // Dropped requests/replies plus late-discarded replies cover every
  // timeout; a reply can only be late if neither leg was dropped.
  EXPECT_LE(client.replies_discarded_late(), std::uint64_t(timed_out));
  EXPECT_GT(transport.packets_dropped(DropCause::kLoss), 0u);
}

TEST(Rpc, UnknownMethodTimesOut) {
  Fixture f;
  bool failed = false;
  f.client.call<EchoRequest, EchoReply>(
      f.server.node(), 99, EchoRequest{}, sim::Duration::seconds(2),
      [&](Result<EchoReply> result) { failed = !result.ok(); });
  f.sim.run();
  EXPECT_TRUE(failed);
  EXPECT_EQ(f.server.requests_bad(), 1u);
}

TEST(Rpc, RefusedWhenQueueFull) {
  ContainerProfile tiny = fast_profile(/*queue_limit=*/0);
  tiny.workers = 1;
  tiny.base_overhead = sim::Duration::seconds(5);
  Fixture f(tiny);
  int refused = 0, ok = 0;
  for (int i = 0; i < 3; ++i) {
    f.client.call<EchoRequest, EchoReply>(
        f.server.node(), 1, EchoRequest{}, sim::Duration::seconds(60),
        [&](Result<EchoReply> result) {
          if (result.ok()) ++ok;
          else if (result.error() == "refused") ++refused;
        });
  }
  f.sim.run();
  EXPECT_EQ(ok, 1);
  EXPECT_EQ(refused, 2);
}

TEST(Rpc, OneWayNotifyDelivered) {
  Fixture f;
  int notified = 0;
  f.server.register_method(7, [&](std::span<const std::uint8_t> body, NodeId) {
    EchoRequest request;
    EXPECT_TRUE(wire::decode(body, request));
    ++notified;
    return Served{};
  });
  EchoRequest request;
  request.value = 5;
  f.client.notify(f.server.node(), 7, request);
  f.sim.run();
  EXPECT_EQ(notified, 1);
  EXPECT_EQ(f.client.calls_in_flight(), 0u);
}

TEST(Rpc, NotifyAllSurvivesPeerSetShrinkingMidRound) {
  // The broadcast frame is encoded once and shared by refcount across
  // every destination. A peer departing between the send and the delivery
  // (runtime leave / crash) must not leak, double-free, or misdeliver:
  // the detached destination's copy is dropped with a typed cause and the
  // remaining peers still decode the same bytes. (ASan/UBSan guard the
  // lifetime claims.)
  Fixture f;
  sim::Simulation& sim = f.sim;
  RpcServer second(sim, f.transport, fast_profile());
  RpcServer third(sim, f.transport, fast_profile());
  int delivered = 0;
  for (RpcServer* server : {&f.server, &second, &third}) {
    server->register_method(7, [&](std::span<const std::uint8_t> body, NodeId) {
      EchoRequest request;
      EXPECT_TRUE(wire::decode(body, request));
      EXPECT_EQ(request.value, 5u);
      EXPECT_EQ(request.text, "fan-out");
      ++delivered;
      return Served{};
    });
  }

  {
    // The caller's peer list dies before any packet is delivered; the
    // shared buffer alone must keep the frame bytes alive in flight.
    std::vector<NodeId> peers{f.server.node(), second.node(), third.node()};
    EchoRequest request;
    request.value = 5;
    request.text = "fan-out";
    f.client.notify_all(peers, 7, request);
  }
  // One peer departs while the round is in flight.
  f.transport.detach(third.node());

  sim.run();
  EXPECT_EQ(delivered, 2);
  EXPECT_EQ(f.transport.packets_dropped(DropCause::kUnknownDestination), 1u);
}

TEST(Rpc, ConcurrentCallsCorrelatedCorrectly) {
  Fixture f;
  std::vector<std::uint64_t> replies;
  for (std::uint64_t i = 0; i < 20; ++i) {
    EchoRequest request;
    request.value = i * 100;
    f.client.call<EchoRequest, EchoReply>(
        f.server.node(), 1, request, sim::Duration::seconds(60),
        [&replies, i](Result<EchoReply> result) {
          ASSERT_TRUE(result.ok());
          EXPECT_EQ(result.value().value, i * 100 + 1);
          replies.push_back(i);
        });
  }
  f.sim.run();
  EXPECT_EQ(replies.size(), 20u);
}

TEST(Rpc, MalformedRequestSwallowedByTypedHandler) {
  Fixture f;
  // Send raw garbage as method 1's body: handler must not crash; client
  // gets an empty (malformed) reply.
  bool done = false;
  f.client.call_raw(f.server.node(), 1, {0xde, 0xad}, sim::Duration::seconds(10),
                    [&](RpcClient::RawResult result) {
                      ASSERT_TRUE(result.ok());
                      EXPECT_TRUE(result.value().empty());
                      done = true;
                    });
  f.sim.run();
  EXPECT_TRUE(done);
}

TEST(Rpc, BadFramesCountedByCause) {
  Fixture f;
  // Header parses but declares one more body byte than the packet carries:
  // must be refused before dispatch, as a body-size mismatch specifically.
  std::vector<std::uint8_t> short_body =
      wire::make_frame(1, wire::FrameKind::kRequest, 1, EchoRequest{}).to_vector();
  short_body.pop_back();
  f.transport.send(
      Packet{f.client.node(), f.server.node(), Buffer(std::move(short_body))});

  // Too short for even a frame header.
  f.transport.send(Packet{f.client.node(), f.server.node(), {1, 2, 3}});

  // Parseable frame of a kind a server never accepts.
  f.transport.send(Packet{f.client.node(), f.server.node(),
                          wire::make_frame(1, wire::FrameKind::kReply, 9,
                                           EchoRequest{})});

  // Well-formed request for a method nobody registered.
  f.transport.send(Packet{f.client.node(), f.server.node(),
                          wire::make_frame(99, wire::FrameKind::kOneWay, 0,
                                           EchoRequest{})});

  f.sim.run();
  EXPECT_EQ(f.server.requests_received(), 0u);
  EXPECT_EQ(f.server.requests_bad(), 4u);
  EXPECT_EQ(f.server.requests_bad(BadFrameCause::kBodySize), 1u);
  EXPECT_EQ(f.server.requests_bad(BadFrameCause::kHeader), 1u);
  EXPECT_EQ(f.server.requests_bad(BadFrameCause::kKind), 1u);
  EXPECT_EQ(f.server.requests_bad(BadFrameCause::kUnknownMethod), 1u);
}

TEST(Rpc, ClientDestructionFailsPendingCalls) {
  sim::Simulation sim;
  SimTransport transport(sim, WanModel(WanParams{}, 18));
  RpcServer server(sim, transport, fast_profile());
  int invoked = 0;
  {
    RpcClient client(sim, transport);
    client.call<EchoRequest, EchoReply>(server.node(), 1, EchoRequest{},
                                        sim::Duration::seconds(30),
                                        [&](Result<EchoReply> result) {
                                          ++invoked;
                                          ASSERT_FALSE(result.ok());
                                          EXPECT_EQ(result.error(), "client shutdown");
                                        });
  }  // destroyed with call in flight: done fires exactly once, with an error
  EXPECT_EQ(invoked, 1);
  sim.run();  // the cancelled timeout must not re-invoke the callback
  EXPECT_EQ(invoked, 1);
}

}  // namespace
}  // namespace digruber::net
