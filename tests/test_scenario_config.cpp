#include "digruber/experiments/config.hpp"

#include <gtest/gtest.h>

namespace digruber::experiments {
namespace {

TEST(ScenarioFromConfig, DefaultsWhenEmpty) {
  const auto result = scenario_from_config(Config::parse(""));
  ASSERT_TRUE(result.ok()) << result.error();
  const ScenarioConfig& cfg = result.value();
  EXPECT_EQ(cfg.n_dps, 3);
  EXPECT_EQ(cfg.n_clients, 120);
  EXPECT_EQ(cfg.profile.name, "GT3.2");
  EXPECT_DOUBLE_EQ(cfg.duration.to_minutes(), 60.0);
  EXPECT_DOUBLE_EQ(cfg.exchange_interval.to_minutes(), 3.0);
  EXPECT_EQ(cfg.selector, "top-k");
}

TEST(ScenarioFromConfig, ParsesAllSections) {
  const auto result = scenario_from_config(Config::parse(R"(
name = my-run
seed = 99
dps = 5
profile = gt4-c
exchange_minutes = 10
dissemination = usla
overlay = ring
grid_scale = 2
background_util = 0.2
clients = 30
timeout_s = 45
think_s = 4
selector = least-used
duration_minutes = 15
vos = 4
groups_per_vo = 2
runtime_mean_s = 120
cpus_max = 3
input_mb = 50
wan_min_ms = 1
wan_max_ms = 20
wan_bandwidth_mbps = 100
uslas = false
dynamic_provisioning = true
saturation_response_s = 12
)"));
  ASSERT_TRUE(result.ok()) << result.error();
  const ScenarioConfig& cfg = result.value();
  EXPECT_EQ(cfg.name, "my-run");
  EXPECT_EQ(cfg.seed, 99u);
  EXPECT_EQ(cfg.n_dps, 5);
  EXPECT_EQ(cfg.profile.name, "GT4-C");
  EXPECT_DOUBLE_EQ(cfg.exchange_interval.to_minutes(), 10.0);
  EXPECT_EQ(cfg.dissemination, digruber::Dissemination::kUslaAndUsage);
  EXPECT_EQ(cfg.overlay, digruber::Overlay::kRing);
  EXPECT_EQ(cfg.grid_scale, 2);
  EXPECT_DOUBLE_EQ(cfg.background_util, 0.2);
  EXPECT_EQ(cfg.n_clients, 30);
  EXPECT_DOUBLE_EQ(cfg.client_timeout.to_seconds(), 45.0);
  EXPECT_DOUBLE_EQ(cfg.think.to_seconds(), 4.0);
  EXPECT_EQ(cfg.selector, "least-used");
  EXPECT_EQ(cfg.workload.n_vos, 4);
  EXPECT_EQ(cfg.workload.cpus_max, 3);
  EXPECT_EQ(cfg.workload.input_bytes_mean, 50'000'000u);
  EXPECT_DOUBLE_EQ(cfg.wan.bandwidth_bps, 100e6);
  EXPECT_FALSE(cfg.install_uslas);
  EXPECT_TRUE(cfg.dynamic_provisioning);
  EXPECT_DOUBLE_EQ(cfg.saturation_response_s, 12.0);
}

TEST(ScenarioFromConfig, ParsesMembershipSection) {
  const auto result = scenario_from_config(Config::parse(R"(
membership = true
suspect_after = 1.5
dead_after = 2.0
join_timeout_s = 5
join_backoff_s = 4
fault_plan = at=120 crash dp=0; at=240 join; at=420 leave dp=1
)"));
  ASSERT_TRUE(result.ok()) << result.error();
  const ScenarioConfig& cfg = result.value();
  EXPECT_TRUE(cfg.membership);
  EXPECT_DOUBLE_EQ(cfg.membership_options.suspect_after, 1.5);
  EXPECT_DOUBLE_EQ(cfg.membership_options.dead_after, 2.0);
  EXPECT_DOUBLE_EQ(cfg.membership_options.join_snapshot_timeout.to_seconds(), 5.0);
  EXPECT_DOUBLE_EQ(cfg.membership_options.join_retry_backoff.to_seconds(), 4.0);
  EXPECT_EQ(cfg.fault_plan.join_count(), 1u);
}

TEST(ScenarioFromConfig, ParsesPartitionToleranceSection) {
  const auto result = scenario_from_config(Config::parse(R"(
partition_tolerance = true
checksums = true
staleness_s = 90
stale_discount = 0.25
delta_pull_gap_s = 15
fault_plan = at=120 partition islands=0|1,2 clients=split; at=300 oneway from=1 to=2; at=360 healoneway from=1 to=2; at=420 heal; at=500 corrupt rate=0.02; at=560 corrupt rate=0
)"));
  ASSERT_TRUE(result.ok()) << result.error();
  const ScenarioConfig& cfg = result.value();
  EXPECT_TRUE(cfg.partition_tolerance);
  EXPECT_TRUE(cfg.frame_checksums);
  EXPECT_DOUBLE_EQ(cfg.partition_options.staleness_threshold.to_seconds(), 90.0);
  EXPECT_DOUBLE_EQ(cfg.partition_options.stale_discount, 0.25);
  EXPECT_DOUBLE_EQ(cfg.partition_options.delta_pull_min_gap.to_seconds(), 15.0);
  EXPECT_EQ(cfg.fault_plan.events().size(), 6u);

  EXPECT_FALSE(
      scenario_from_config(Config::parse("stale_discount = 1.5\n")).ok());
}

TEST(ScenarioFromConfig, RejectsChurnVerbsWithMembershipOff) {
  const auto join_only =
      scenario_from_config(Config::parse("fault_plan = at=120 join\n"));
  ASSERT_FALSE(join_only.ok());
  EXPECT_NE(join_only.error().find("membership is off"), std::string::npos);
  EXPECT_FALSE(
      scenario_from_config(Config::parse("fault_plan = at=120 leave dp=0\n")).ok());
}

TEST(ScenarioFromConfig, RejectsUnknownKeys) {
  const auto result = scenario_from_config(Config::parse("dp_count = 3\n"));
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error().find("unknown config key"), std::string::npos);
}

TEST(ScenarioFromConfig, RejectsBadEnumValues) {
  EXPECT_FALSE(scenario_from_config(Config::parse("profile = gt5\n")).ok());
  EXPECT_FALSE(scenario_from_config(Config::parse("overlay = torus\n")).ok());
  EXPECT_FALSE(scenario_from_config(Config::parse("dissemination = all\n")).ok());
}

TEST(ScenarioFromConfig, ParsesOverlayStrategies) {
  // The `overlay` key spans both families: the legacy static wirings
  // (mesh/ring/star) and the src/overlay/ dissemination strategies.
  const auto tree = scenario_from_config(Config::parse(
      "overlay = tree\noverlay_degree = 3\n"));
  ASSERT_TRUE(tree.ok()) << tree.error();
  EXPECT_EQ(tree.value().overlay, digruber::Overlay::kMesh);
  EXPECT_EQ(tree.value().overlay_options.kind, overlay::Kind::kTree);
  EXPECT_EQ(tree.value().overlay_options.tree_degree, 3u);

  const auto gossip = scenario_from_config(Config::parse(
      "overlay = gossip\noverlay_fanout = 4\n"));
  ASSERT_TRUE(gossip.ok()) << gossip.error();
  EXPECT_EQ(gossip.value().overlay_options.kind, overlay::Kind::kGossip);
  EXPECT_EQ(gossip.value().overlay_options.gossip_fanout, 4u);

  const auto super = scenario_from_config(Config::parse(
      "overlay = superpeer\noverlay_superpeers = 5\n"));
  ASSERT_TRUE(super.ok()) << super.error();
  EXPECT_EQ(super.value().overlay_options.kind, overlay::Kind::kSuperPeer);
  EXPECT_EQ(super.value().overlay_options.superpeers, 5u);

  const auto mesh = scenario_from_config(Config::parse("overlay = mesh\n"));
  ASSERT_TRUE(mesh.ok()) << mesh.error();
  EXPECT_EQ(mesh.value().overlay_options.kind, overlay::Kind::kMesh);

  EXPECT_FALSE(
      scenario_from_config(Config::parse("overlay_degree = 0\n")).ok());
  EXPECT_FALSE(
      scenario_from_config(Config::parse("overlay_fanout = 0\n")).ok());
}

TEST(ScenarioFromConfig, RejectsOutOfRangeValues) {
  EXPECT_FALSE(scenario_from_config(Config::parse("dps = 0\n")).ok());
  EXPECT_FALSE(scenario_from_config(Config::parse("clients = -4\n")).ok());
  EXPECT_FALSE(scenario_from_config(Config::parse("wan_loss = 1.5\n")).ok());
  EXPECT_FALSE(
      scenario_from_config(Config::parse("cpus_min = 4\ncpus_max = 2\n")).ok());
}

TEST(ScenarioFromConfig, RejectsTypeErrors) {
  EXPECT_FALSE(scenario_from_config(Config::parse("dps = three\n")).ok());
  EXPECT_FALSE(scenario_from_config(Config::parse("uslas = maybe\n")).ok());
}

TEST(ScenarioFromConfig, ConfiguredScenarioRuns) {
  const auto cfg = scenario_from_config(Config::parse(
      "dps = 1\nclients = 6\nduration_minutes = 5\ngrid_scale = 1\nvos = 2\n"
      "groups_per_vo = 1\n"));
  ASSERT_TRUE(cfg.ok()) << cfg.error();
  const ScenarioResult r = run_scenario(cfg.value());
  EXPECT_GT(r.all.requests, 0u);
  EXPECT_EQ(r.final_dps, 1);
}

}  // namespace
}  // namespace digruber::experiments
