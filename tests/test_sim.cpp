#include "digruber/sim/simulation.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace digruber::sim {
namespace {

TEST(Time, Arithmetic) {
  const Time t = Time::zero() + Duration::seconds(5);
  EXPECT_DOUBLE_EQ(t.to_seconds(), 5.0);
  EXPECT_DOUBLE_EQ((t - Time::zero()).to_seconds(), 5.0);
  EXPECT_DOUBLE_EQ((Duration::minutes(2)).to_seconds(), 120.0);
  EXPECT_DOUBLE_EQ((Duration::hours(1)).to_minutes(), 60.0);
  EXPECT_DOUBLE_EQ((Duration::seconds(10) * 0.5).to_seconds(), 5.0);
  EXPECT_DOUBLE_EQ(Duration::seconds(10) / Duration::seconds(4), 2.5);
}

TEST(Simulation, RunsEventsInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.schedule_after(Duration::seconds(3), [&] { order.push_back(3); });
  sim.schedule_after(Duration::seconds(1), [&] { order.push_back(1); });
  sim.schedule_after(Duration::seconds(2), [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.events_processed(), 3u);
}

TEST(Simulation, TiesFireInSchedulingOrder) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_after(Duration::seconds(1), [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[std::size_t(i)], i);
}

TEST(Simulation, ClockAdvancesToEventTime) {
  Simulation sim;
  Time seen;
  sim.schedule_after(Duration::seconds(7.5), [&] { seen = sim.now(); });
  sim.run();
  EXPECT_DOUBLE_EQ(seen.to_seconds(), 7.5);
  EXPECT_DOUBLE_EQ(sim.now().to_seconds(), 7.5);
}

TEST(Simulation, CancelPreventsExecution) {
  Simulation sim;
  bool fired = false;
  const EventId id = sim.schedule_after(Duration::seconds(1), [&] { fired = true; });
  sim.cancel(id);
  sim.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(sim.events_processed(), 0u);
}

TEST(Simulation, CancelAfterFireIsNoop) {
  Simulation sim;
  int count = 0;
  const EventId id = sim.schedule_after(Duration::seconds(1), [&] { ++count; });
  sim.run();
  sim.cancel(id);  // must not crash or affect anything
  EXPECT_EQ(count, 1);
}

TEST(Simulation, RunUntilStopsAtBoundary) {
  Simulation sim;
  std::vector<double> fired;
  for (double t : {1.0, 2.0, 3.0, 4.0}) {
    sim.schedule_at(Time::from_seconds(t), [&fired, t] { fired.push_back(t); });
  }
  sim.run_until(Time::from_seconds(2.0));
  EXPECT_EQ(fired, (std::vector<double>{1.0, 2.0}));  // boundary inclusive
  EXPECT_DOUBLE_EQ(sim.now().to_seconds(), 2.0);
  sim.run();
  EXPECT_EQ(fired.size(), 4u);
}

TEST(Simulation, RunUntilAdvancesClockWhenQueueDrains) {
  Simulation sim;
  sim.run_until(Time::from_seconds(100));
  EXPECT_DOUBLE_EQ(sim.now().to_seconds(), 100.0);
}

TEST(Simulation, StopInterruptsRun) {
  Simulation sim;
  int count = 0;
  for (int i = 1; i <= 10; ++i) {
    sim.schedule_after(Duration::seconds(i), [&] {
      ++count;
      if (count == 3) sim.stop();
    });
  }
  sim.run();
  EXPECT_EQ(count, 3);
  EXPECT_EQ(sim.events_pending(), 7u);
}

TEST(Simulation, EventsCanScheduleEvents) {
  Simulation sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) sim.schedule_after(Duration::seconds(1), recurse);
  };
  sim.schedule_after(Duration::seconds(1), recurse);
  sim.run();
  EXPECT_EQ(depth, 5);
  EXPECT_DOUBLE_EQ(sim.now().to_seconds(), 5.0);
}

TEST(Simulation, DeterministicReplay) {
  auto run_once = [](std::uint64_t seed) {
    Simulation sim(seed);
    std::vector<std::uint64_t> draws;
    for (int i = 0; i < 5; ++i) {
      sim.schedule_after(Duration::seconds(i + 1), [&] { draws.push_back(sim.rng()()); });
    }
    sim.run();
    return draws;
  };
  EXPECT_EQ(run_once(99), run_once(99));
  EXPECT_NE(run_once(99), run_once(100));
}

TEST(PeriodicTimer, FiresAtPeriod) {
  Simulation sim;
  int ticks = 0;
  PeriodicTimer timer(sim, Duration::seconds(10), [&] { ++ticks; });
  sim.run_until(Time::from_seconds(35));
  EXPECT_EQ(ticks, 4);  // zero start delay: fires at t = 0, 10, 20, 30
}

TEST(PeriodicTimer, StartDelayShiftsPhase) {
  Simulation sim;
  std::vector<double> at;
  PeriodicTimer timer(sim, Duration::seconds(10), [&] { at.push_back(sim.now().to_seconds()); },
                      Duration::seconds(5));
  sim.run_until(Time::from_seconds(30));
  EXPECT_EQ(at, (std::vector<double>{5.0, 15.0, 25.0}));
}

TEST(PeriodicTimer, StopCancelsFutureTicks) {
  Simulation sim;
  int ticks = 0;
  PeriodicTimer timer(sim, Duration::seconds(1), [&] { ++ticks; },
                      Duration::seconds(1));
  sim.schedule_after(Duration::seconds(3.5), [&] { timer.stop(); });
  sim.run();
  EXPECT_EQ(ticks, 3);
  EXPECT_FALSE(timer.running());
}

TEST(PeriodicTimer, DestructionCancels) {
  Simulation sim;
  int ticks = 0;
  {
    PeriodicTimer timer(sim, Duration::seconds(1), [&] { ++ticks; },
                        Duration::seconds(1));
  }
  sim.run_until(Time::from_seconds(10));
  EXPECT_EQ(ticks, 0);
}

}  // namespace
}  // namespace digruber::sim
