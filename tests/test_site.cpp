#include "digruber/grid/site.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace digruber::grid {
namespace {

Job make_job(std::uint64_t id, int cpus, double runtime_s, std::uint64_t vo = 0) {
  Job job;
  job.id = JobId(id);
  job.vo = VoId(vo);
  job.group = GroupId(vo * 10);
  job.user = UserId(vo * 100);
  job.cpus = cpus;
  job.runtime = sim::Duration::seconds(runtime_s);
  return job;
}

TEST(Site, CpuAccounting) {
  sim::Simulation sim;
  Site site(sim, SiteId(0), "s0", {{8, 1.0}});
  EXPECT_EQ(site.total_cpus(), 8);
  EXPECT_EQ(site.free_cpus(), 8);

  site.submit(make_job(1, 3, 100), [](const Job&) {});
  EXPECT_EQ(site.free_cpus(), 5);
  sim.run();
  EXPECT_EQ(site.free_cpus(), 8);
  EXPECT_EQ(site.jobs_completed(), 1u);
}

TEST(Site, JobTimestampsAndState) {
  sim::Simulation sim;
  Site site(sim, SiteId(0), "s0", {{4, 1.0}});
  Job finished;
  sim.schedule_after(sim::Duration::seconds(10), [&] {
    site.submit(make_job(1, 1, 50), [&](const Job& j) { finished = j; });
  });
  sim.run();
  EXPECT_EQ(finished.state, JobState::kCompleted);
  EXPECT_DOUBLE_EQ(finished.dispatched.to_seconds(), 10.0);
  EXPECT_DOUBLE_EQ(finished.started.to_seconds(), 10.0);
  EXPECT_DOUBLE_EQ(finished.completed.to_seconds(), 60.0);
  EXPECT_DOUBLE_EQ(finished.queue_time().to_seconds(), 0.0);
}

TEST(Site, FifoQueueingWhenFull) {
  sim::Simulation sim;
  Site site(sim, SiteId(0), "s0", {{2, 1.0}});
  std::vector<std::uint64_t> completion_order;
  for (std::uint64_t i = 0; i < 4; ++i) {
    site.submit(make_job(i, 2, 100),
                [&](const Job& j) { completion_order.push_back(j.id.value()); });
  }
  EXPECT_EQ(site.queued_jobs(), 3);
  sim.run();
  EXPECT_EQ(completion_order, (std::vector<std::uint64_t>{0, 1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now().to_seconds(), 400.0);  // strictly serialized
}

TEST(Site, QueueTimeMeasured) {
  sim::Simulation sim;
  Site site(sim, SiteId(0), "s0", {{1, 1.0}});
  Job second;
  site.submit(make_job(1, 1, 30), [](const Job&) {});
  site.submit(make_job(2, 1, 30), [&](const Job& j) { second = j; });
  sim.run();
  EXPECT_DOUBLE_EQ(second.queue_time().to_seconds(), 30.0);
}

TEST(Site, SpeedScalesRuntime) {
  sim::Simulation sim;
  Site site(sim, SiteId(0), "fast", {{4, 2.0}});
  EXPECT_DOUBLE_EQ(site.speed(), 2.0);
  site.submit(make_job(1, 1, 100), [](const Job&) {});
  sim.run();
  EXPECT_DOUBLE_EQ(sim.now().to_seconds(), 50.0);
}

TEST(Site, MixedClusterSpeedIsWeightedMean) {
  sim::Simulation sim;
  Site site(sim, SiteId(0), "mixed", {{10, 1.0}, {30, 2.0}});
  EXPECT_DOUBLE_EQ(site.speed(), 1.75);
  EXPECT_EQ(site.total_cpus(), 40);
}

TEST(Site, PerVoAccounting) {
  sim::Simulation sim;
  Site site(sim, SiteId(0), "s0", {{10, 1.0}});
  site.submit(make_job(1, 2, 100, /*vo=*/1), [](const Job&) {});
  site.submit(make_job(2, 3, 200, /*vo=*/1), [](const Job&) {});
  site.submit(make_job(3, 1, 100, /*vo=*/2), [](const Job&) {});
  EXPECT_EQ(site.running_for_vo(VoId(1)), 5);
  EXPECT_EQ(site.running_for_vo(VoId(2)), 1);
  EXPECT_EQ(site.running_for_vo(VoId(3)), 0);

  sim.run_until(sim::Time::from_seconds(150));
  EXPECT_EQ(site.running_for_vo(VoId(1)), 3);  // jobs 1 and 3 done
  EXPECT_EQ(site.running_for_vo(VoId(2)), 0);
  sim.run();
  EXPECT_EQ(site.running_for_vo(VoId(1)), 0);
}

TEST(Site, SnapshotReflectsState) {
  sim::Simulation sim;
  Site site(sim, SiteId(7), "s7", {{16, 1.0}});
  site.submit(make_job(1, 4, 100, 3), [](const Job&) {});
  const SiteSnapshot snap = site.snapshot();
  EXPECT_EQ(snap.site, SiteId(7));
  EXPECT_EQ(snap.total_cpus, 16);
  EXPECT_EQ(snap.free_cpus, 12);
  EXPECT_EQ(snap.queued_jobs, 0);
  EXPECT_EQ(snap.running_per_vo.at(VoId(3)), 4);
}

TEST(Site, OversizedJobFailsImmediately) {
  sim::Simulation sim;
  Site site(sim, SiteId(0), "tiny", {{2, 1.0}});
  Job result;
  site.submit(make_job(1, 5, 100), [&](const Job& j) { result = j; });
  EXPECT_EQ(result.state, JobState::kFailed);
  EXPECT_EQ(site.jobs_failed(), 1u);
  EXPECT_EQ(site.free_cpus(), 2);
}

TEST(Site, TakeDownKillsRunningAndQueued) {
  sim::Simulation sim;
  Site site(sim, SiteId(0), "s0", {{1, 1.0}});
  std::vector<JobState> outcomes;
  site.submit(make_job(1, 1, 100), [&](const Job& j) { outcomes.push_back(j.state); });
  site.submit(make_job(2, 1, 100), [&](const Job& j) { outcomes.push_back(j.state); });
  sim.schedule_after(sim::Duration::seconds(10),
                     [&] { site.take_down(sim::Duration::minutes(5)); });
  sim.run();
  ASSERT_EQ(outcomes.size(), 2u);
  EXPECT_EQ(outcomes[0], JobState::kFailed);
  EXPECT_EQ(outcomes[1], JobState::kFailed);
  EXPECT_EQ(site.free_cpus(), 1);
}

TEST(Site, DownSiteRefusesSubmissionsUntilRecovery) {
  sim::Simulation sim;
  Site site(sim, SiteId(0), "s0", {{2, 1.0}});
  site.take_down(sim::Duration::seconds(100));
  EXPECT_TRUE(site.is_down());
  EXPECT_FALSE(site.submit(make_job(1, 1, 10), [](const Job&) {}));
  EXPECT_EQ(site.snapshot().free_cpus, 0);  // advertises nothing while down

  bool completed = false;
  sim.schedule_after(sim::Duration::seconds(150), [&] {
    EXPECT_FALSE(site.is_down());
    EXPECT_TRUE(site.submit(make_job(2, 1, 10), [&](const Job&) { completed = true; }));
  });
  sim.run();
  EXPECT_TRUE(completed);
}

TEST(Site, LocalReservationReducesFreeCapacity) {
  sim::Simulation sim;
  Site site(sim, SiteId(0), "s0", {{10, 1.0}});
  site.reserve_local(4);
  EXPECT_EQ(site.free_cpus(), 6);
  EXPECT_EQ(site.local_reserved(), 4);
  site.reserve_local(100);  // clamped to remaining capacity
  EXPECT_EQ(site.free_cpus(), 0);
  EXPECT_EQ(site.local_reserved(), 10);
}

TEST(Site, CpuSecondsConsumed) {
  sim::Simulation sim;
  Site site(sim, SiteId(0), "s0", {{4, 1.0}});
  site.submit(make_job(1, 2, 100), [](const Job&) {});
  site.submit(make_job(2, 1, 50), [](const Job&) {});
  sim.run();
  EXPECT_DOUBLE_EQ(site.cpu_seconds_consumed(), 2 * 100.0 + 1 * 50.0);
}

/// Property sweep: with `w` CPUs and n single-CPU jobs of equal runtime,
/// makespan is ceil(n/w) * runtime and all jobs complete.
class SiteProperty : public ::testing::TestWithParam<int> {};

TEST_P(SiteProperty, FifoMakespan) {
  const int width = GetParam();
  sim::Simulation sim;
  Site site(sim, SiteId(0), "s", {{width, 1.0}});
  const int n = 23;
  int completed = 0;
  for (int i = 0; i < n; ++i) {
    site.submit(make_job(std::uint64_t(i), 1, 60), [&](const Job& j) {
      EXPECT_EQ(j.state, JobState::kCompleted);
      ++completed;
    });
  }
  sim.run();
  EXPECT_EQ(completed, n);
  EXPECT_DOUBLE_EQ(sim.now().to_seconds(), std::ceil(double(n) / width) * 60.0);
}

INSTANTIATE_TEST_SUITE_P(Widths, SiteProperty, ::testing::Values(1, 2, 4, 8, 23, 64));

}  // namespace
}  // namespace digruber::grid

namespace digruber::grid {
namespace {

TEST(Site, DeliveredCpuSecondsPerConsumer) {
  sim::Simulation sim;
  Site site(sim, SiteId(0), "s0", {{8, 1.0}});
  auto job = [](std::uint64_t id, std::uint64_t vo, std::uint64_t group,
                int cpus, double runtime_s) {
    Job j;
    j.id = JobId(id);
    j.vo = VoId(vo);
    j.group = GroupId(group);
    j.user = UserId(group);
    j.cpus = cpus;
    j.runtime = sim::Duration::seconds(runtime_s);
    return j;
  };
  site.submit(job(1, 0, 0, 2, 100), [](const Job&) {});
  site.submit(job(2, 0, 1, 1, 200), [](const Job&) {});
  site.submit(job(3, 1, 2, 1, 50), [](const Job&) {});
  sim.run();
  EXPECT_DOUBLE_EQ(site.cpu_seconds_per_vo().at(VoId(0)), 400.0);
  EXPECT_DOUBLE_EQ(site.cpu_seconds_per_vo().at(VoId(1)), 50.0);
  EXPECT_DOUBLE_EQ(site.cpu_seconds_per_group().at(GroupId(0)), 200.0);
  EXPECT_DOUBLE_EQ(site.cpu_seconds_per_group().at(GroupId(1)), 200.0);
  EXPECT_DOUBLE_EQ(site.cpu_seconds_per_group().at(GroupId(2)), 50.0);
}

}  // namespace
}  // namespace digruber::grid
