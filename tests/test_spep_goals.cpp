#include <gtest/gtest.h>

#include "digruber/usla/goals.hpp"
#include "digruber/usla/spep.hpp"

namespace digruber::usla {
namespace {

struct Fixture {
  sim::Simulation sim;
  grid::Site site{sim, SiteId(0), "s0", {{100, 1.0}}};
  grid::VoCatalog catalog = grid::VoCatalog::uniform(2, 1);
  AllocationTree tree;

  Fixture() {
    const auto agreement = parse_agreement(
        "agreement t\n"
        "term a: grid -> vo:vo0 cpu 30+\n"
        "term b: grid -> vo:vo1 cpu 70+\n");
    tree = AllocationTree::build({agreement.value()}, catalog).value();
  }

  grid::Job job(std::uint64_t id, std::uint64_t vo, int cpus) {
    grid::Job j;
    j.id = JobId(id);
    j.vo = VoId(vo);
    j.group = GroupId(vo);
    j.user = UserId(vo);
    j.cpus = cpus;
    j.runtime = sim::Duration::minutes(30);
    return j;
  }
};

TEST(Spep, EnforcesVoShareAtAdmission) {
  Fixture f;
  const UslaEvaluator evaluator(f.tree, f.catalog);
  SitePolicyEnforcementPoint::Options options;
  options.enforce = true;
  SitePolicyEnforcementPoint spep(f.site, evaluator, options);

  // vo0 is capped at 30% of 100 CPUs.
  EXPECT_TRUE(spep.submit(f.job(1, 0, 20), [](const grid::Job&) {}));
  EXPECT_TRUE(spep.submit(f.job(2, 0, 10), [](const grid::Job&) {}));
  EXPECT_FALSE(spep.submit(f.job(3, 0, 1), [](const grid::Job&) {}));  // over cap
  EXPECT_EQ(spep.admitted(), 2u);
  EXPECT_EQ(spep.rejected(), 1u);
  // vo1 still has its share available.
  EXPECT_TRUE(spep.submit(f.job(4, 1, 50), [](const grid::Job&) {}));
}

TEST(Spep, AuditModeLetsViolationsThrough) {
  Fixture f;
  const UslaEvaluator evaluator(f.tree, f.catalog);
  SitePolicyEnforcementPoint spep(f.site, evaluator,
                                  SitePolicyEnforcementPoint::Options{false});
  EXPECT_TRUE(spep.submit(f.job(1, 0, 30), [](const grid::Job&) {}));
  EXPECT_TRUE(spep.submit(f.job(2, 0, 30), [](const grid::Job&) {}));  // violation
  EXPECT_EQ(spep.rejected(), 0u);
  EXPECT_EQ(spep.audited_violations(), 1u);
  EXPECT_EQ(f.site.running_for_vo(VoId(0)), 60);
}

TEST(Spep, CapFreesUpAsJobsComplete) {
  Fixture f;
  const UslaEvaluator evaluator(f.tree, f.catalog);
  SitePolicyEnforcementPoint spep(f.site, evaluator);
  EXPECT_TRUE(spep.submit(f.job(1, 0, 30), [](const grid::Job&) {}));
  EXPECT_FALSE(spep.submit(f.job(2, 0, 5), [](const grid::Job&) {}));
  f.sim.run();  // job 1 completes
  EXPECT_TRUE(spep.submit(f.job(3, 0, 5), [](const grid::Job&) {}));
}

TEST(Spep, DownSiteRefuses) {
  Fixture f;
  const UslaEvaluator evaluator(f.tree, f.catalog);
  SitePolicyEnforcementPoint spep(f.site, evaluator);
  f.site.take_down(sim::Duration::minutes(5));
  EXPECT_FALSE(spep.submit(f.job(1, 0, 1), [](const grid::Job&) {}));
}

TEST(GoalMonitor, TracksViolationsPerMetric) {
  GoalMonitor monitor({Goal{"qtime", "<", 60.0}, Goal{"accuracy", ">", 0.9}});
  monitor.observe("qtime", 10.0);
  monitor.observe("qtime", 120.0);  // violation
  monitor.observe("accuracy", 0.95);
  monitor.observe("accuracy", 0.5);  // violation
  monitor.observe("unrelated", 1.0);

  ASSERT_EQ(monitor.statuses().size(), 2u);
  const auto& qtime = monitor.statuses()[0];
  EXPECT_EQ(qtime.observations, 2u);
  EXPECT_EQ(qtime.violations, 1u);
  EXPECT_DOUBLE_EQ(qtime.mean, 65.0);
  EXPECT_DOUBLE_EQ(qtime.worst, 120.0);

  const auto& accuracy = monitor.statuses()[1];
  EXPECT_EQ(accuracy.violations, 1u);
  EXPECT_DOUBLE_EQ(accuracy.worst, 0.5);
}

TEST(GoalMonitor, SatisfiedWithinTolerance) {
  GoalMonitor monitor({Goal{"qtime", "<", 60.0}});
  // 1 violation out of 20 observations: within the 10% tolerance.
  for (int i = 0; i < 19; ++i) monitor.observe("qtime", 5.0);
  monitor.observe("qtime", 100.0);
  EXPECT_TRUE(monitor.all_satisfied());
  // Push past the tolerance.
  for (int i = 0; i < 5; ++i) monitor.observe("qtime", 100.0);
  EXPECT_FALSE(monitor.all_satisfied());
}

TEST(GoalMonitor, EmptyAndUnobserved) {
  GoalMonitor empty({});
  EXPECT_TRUE(empty.all_satisfied());

  GoalMonitor unobserved({Goal{"qtime", "<", 1.0}});
  EXPECT_TRUE(unobserved.all_satisfied());
  EXPECT_TRUE(unobserved.statuses()[0].satisfied());
}

TEST(GoalMonitor, SummaryMentionsEveryGoal) {
  GoalMonitor monitor({Goal{"qtime", "<", 60.0}, Goal{"util", ">", 0.2}});
  monitor.observe("qtime", 10.0);
  const std::string summary = monitor.summary();
  EXPECT_NE(summary.find("qtime"), std::string::npos);
  EXPECT_NE(summary.find("util"), std::string::npos);
  EXPECT_NE(summary.find("SATISFIED"), std::string::npos);
}

}  // namespace
}  // namespace digruber::usla
