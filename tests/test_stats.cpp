#include "digruber/common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace digruber {
namespace {

TEST(StreamingStats, EmptyIsZero) {
  StreamingStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
}

TEST(StreamingStats, BasicMoments) {
  StreamingStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);  // classic population-stddev example
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(StreamingStats, MergeEqualsSingleStream) {
  StreamingStats a, b, whole;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i) * 10;
    (i % 2 ? a : b).add(x);
    whole.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), whole.min());
  EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

TEST(StreamingStats, MergeWithEmpty) {
  StreamingStats a, empty;
  a.add(1.0);
  a.add(3.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);

  StreamingStats c;
  c.merge(a);
  EXPECT_EQ(c.count(), 2u);
  EXPECT_DOUBLE_EQ(c.mean(), 2.0);
}

TEST(SampleSet, QuantilesExact) {
  SampleSet s;
  for (const double x : {5.0, 1.0, 3.0, 2.0, 4.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_DOUBLE_EQ(s.median(), 3.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 5.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.25), 2.0);
}

TEST(SampleSet, QuantileInterpolates) {
  SampleSet s;
  s.add(0.0);
  s.add(10.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.1), 1.0);
}

TEST(SampleSet, AddAfterQuantileStillCorrect) {
  SampleSet s;
  s.add(2.0);
  s.add(1.0);
  EXPECT_DOUBLE_EQ(s.median(), 1.5);
  s.add(10.0);  // invalidates the sorted cache
  EXPECT_DOUBLE_EQ(s.median(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 10.0);
}

TEST(SampleSet, EmptySafe) {
  SampleSet s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.quantile(0.5), 0.0);
}

TEST(Summary, MatchesSampleSet) {
  SampleSet s;
  for (int i = 1; i <= 9; ++i) s.add(double(i));
  const Summary sum = summarize(s);
  EXPECT_DOUBLE_EQ(sum.min, 1.0);
  EXPECT_DOUBLE_EQ(sum.median, 5.0);
  EXPECT_DOUBLE_EQ(sum.average, 5.0);
  EXPECT_DOUBLE_EQ(sum.max, 9.0);
  EXPECT_EQ(sum.count, 9u);
}

// --- Percentile edge cases (audit regression tests). -----------------------

TEST(SampleSet, QuantileClampsOutOfRangeQ) {
  SampleSet s;
  for (const double x : {1.0, 2.0, 3.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.quantile(-0.5), 1.0);  // below range -> min
  EXPECT_DOUBLE_EQ(s.quantile(1.5), 3.0);   // above range -> max
}

TEST(SampleSet, SingleSampleEveryQuantile) {
  SampleSet s;
  s.add(42.0);
  for (const double q : {0.0, 0.25, 0.5, 0.9, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(s.quantile(q), 42.0) << "q=" << q;
  }
}

TEST(SampleSet, DuplicateValuesStable) {
  SampleSet s;
  for (int i = 0; i < 10; ++i) s.add(7.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.01), 7.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.99), 7.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(SampleSet, InterpolationBetweenAdjacentRanks) {
  // Type-7 interpolation: pos = q*(n-1). For n=4, q=0.5 -> pos 1.5, the
  // midpoint of the 2nd and 3rd order statistics.
  SampleSet s;
  for (const double x : {10.0, 20.0, 30.0, 40.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 25.0);
  // Exactly on a rank: no interpolation error.
  EXPECT_DOUBLE_EQ(s.quantile(1.0 / 3.0), 20.0);
  EXPECT_DOUBLE_EQ(s.quantile(2.0 / 3.0), 30.0);
}

TEST(SampleSet, NegativeValues) {
  SampleSet s;
  for (const double x : {-5.0, -1.0, 3.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.min(), -5.0);
  EXPECT_DOUBLE_EQ(s.median(), -1.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.25), -3.0);
}

TEST(SampleSet, MonotoneInQ) {
  SampleSet s;
  for (int i = 0; i < 101; ++i) s.add(double((i * 37) % 101));
  double prev = s.quantile(0.0);
  for (double q = 0.01; q <= 1.0; q += 0.01) {
    const double cur = s.quantile(q);
    EXPECT_GE(cur, prev) << "quantile not monotone at q=" << q;
    prev = cur;
  }
}

TEST(LinearFit, RecoversExactLine) {
  std::vector<double> x, y;
  for (int i = 0; i < 20; ++i) {
    x.push_back(double(i));
    y.push_back(3.0 + 2.0 * double(i));
  }
  const LinearFit fit = fit_linear(x, y);
  EXPECT_NEAR(fit.intercept, 3.0, 1e-9);
  EXPECT_NEAR(fit.slope, 2.0, 1e-9);
  EXPECT_NEAR(fit.r2, 1.0, 1e-9);
}

TEST(LinearFit, DegenerateInputs) {
  EXPECT_EQ(fit_linear({}, {}).slope, 0.0);
  EXPECT_EQ(fit_linear({1.0}, {2.0}).slope, 0.0);
  // Vertical spread at a single x: sxx == 0.
  const LinearFit fit = fit_linear({2.0, 2.0, 2.0}, {1.0, 2.0, 3.0});
  EXPECT_EQ(fit.slope, 0.0);
}

TEST(LinearFit, NoisyLineR2Positive) {
  std::vector<double> x, y;
  for (int i = 0; i < 50; ++i) {
    x.push_back(double(i));
    y.push_back(1.0 + 0.5 * double(i) + ((i % 2) ? 0.3 : -0.3));
  }
  const LinearFit fit = fit_linear(x, y);
  EXPECT_NEAR(fit.slope, 0.5, 0.01);
  EXPECT_GT(fit.r2, 0.99);
}

}  // namespace
}  // namespace digruber
