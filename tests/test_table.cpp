#include "digruber/common/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace digruber {
namespace {

TEST(Table, RendersAlignedColumns) {
  Table t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer-name", "22"});
  std::ostringstream os;
  t.render(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| name        | value |"), std::string::npos);
  EXPECT_NE(out.find("| longer-name | 22    |"), std::string::npos);
}

TEST(Table, ShortRowsPadded) {
  Table t({"a", "b", "c"});
  t.add_row({"only"});
  std::ostringstream os;
  EXPECT_NO_THROW(t.render(os));
  EXPECT_EQ(t.rows(), 1u);
}

TEST(Table, NumFormatting) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(2.0, 0), "2");
  EXPECT_EQ(Table::pct(0.1234), "12.3%");
  EXPECT_EQ(Table::pct(1.0, 0), "100%");
}

TEST(Table, CsvEscaping) {
  Table t({"k", "v"});
  t.add_row({"plain", "with,comma"});
  t.add_row({"quote\"inside", "line\nbreak"});
  std::ostringstream os;
  t.render_csv(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("k,v\n"), std::string::npos);
  EXPECT_NE(out.find("plain,\"with,comma\""), std::string::npos);
  EXPECT_NE(out.find("\"quote\"\"inside\""), std::string::npos);
}

}  // namespace
}  // namespace digruber
