#include "digruber/grid/topology.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace digruber::grid {
namespace {

TEST(Topology, Osg2005Preset) {
  const TopologySpec spec = TopologySpec::osg2005();
  EXPECT_EQ(spec.sites.size(), 30u);
  const std::int64_t cpus = spec.total_cpus();
  EXPECT_GT(cpus, 2500);
  EXPECT_LT(cpus, 3500);
  // Heavy tail: the largest site dominates the smallest by >10x.
  std::int64_t largest = 0, smallest = 1 << 30;
  for (const auto& site : spec.sites) {
    std::int64_t total = 0;
    for (const auto& c : site.clusters) total += c.cpus;
    largest = std::max(largest, total);
    smallest = std::min(smallest, total);
  }
  EXPECT_GT(largest, smallest * 10);
}

TEST(Topology, ScaledGridApproximatesTargets) {
  Rng rng(1);
  const TopologySpec spec = TopologySpec::osg_scaled(10, rng);
  EXPECT_EQ(spec.sites.size(), 300u);
  // Target ~30k CPUs, allow generator slack.
  EXPECT_GT(spec.total_cpus(), 24000);
  EXPECT_LT(spec.total_cpus(), 40000);
}

TEST(Topology, GenerateRespectsFloor) {
  Rng rng(2);
  const TopologySpec spec = TopologySpec::generate(50, 500, rng);
  EXPECT_EQ(spec.sites.size(), 50u);
  for (const auto& site : spec.sites) {
    std::int64_t total = 0;
    for (const auto& c : site.clusters) total += c.cpus;
    EXPECT_GE(total, 4);
  }
}

TEST(Topology, GenerateRejectsBadParameters) {
  Rng rng(3);
  EXPECT_THROW(TopologySpec::generate(0, 100, rng), std::invalid_argument);
  EXPECT_THROW(TopologySpec::generate(10, 5, rng), std::invalid_argument);
}

TEST(Topology, GenerateDeterministicPerSeed) {
  Rng a(7), b(7), c(8);
  const TopologySpec sa = TopologySpec::generate(20, 2000, a);
  const TopologySpec sb = TopologySpec::generate(20, 2000, b);
  const TopologySpec sc = TopologySpec::generate(20, 2000, c);
  auto sizes = [](const TopologySpec& spec) {
    std::vector<std::int64_t> out;
    for (const auto& site : spec.sites) {
      std::int64_t total = 0;
      for (const auto& cluster : site.clusters) total += cluster.cpus;
      out.push_back(total);
    }
    return out;
  };
  EXPECT_EQ(sizes(sa), sizes(sb));
  EXPECT_NE(sizes(sa), sizes(sc));
}

TEST(Grid, OwnsSitesWithStableIds) {
  sim::Simulation sim;
  const TopologySpec spec = TopologySpec::osg2005();
  Grid grid(sim, spec);
  EXPECT_EQ(grid.site_count(), 30u);
  EXPECT_EQ(grid.total_cpus(), spec.total_cpus());
  for (std::size_t i = 0; i < grid.site_count(); ++i) {
    EXPECT_EQ(grid.site(SiteId(i)).id(), SiteId(i));
    EXPECT_EQ(grid.site(SiteId(i)).name(), spec.sites[i].name);
  }
}

TEST(Grid, FreeAndBestTracking) {
  sim::Simulation sim;
  TopologySpec spec;
  spec.sites.push_back({"a", {{10, 1.0}}});
  spec.sites.push_back({"b", {{50, 1.0}}});
  spec.sites.push_back({"c", {{20, 1.0}}});
  Grid grid(sim, spec);
  EXPECT_EQ(grid.total_free_cpus(), 80);
  EXPECT_EQ(grid.best_site().id(), SiteId(1));

  Job job;
  job.id = JobId(1);
  job.vo = VoId(0);
  job.cpus = 45;
  job.runtime = sim::Duration::seconds(100);
  grid.site(SiteId(1)).submit(std::move(job), [](const Job&) {});
  EXPECT_EQ(grid.total_free_cpus(), 35);
  EXPECT_EQ(grid.best_site().id(), SiteId(2));
  sim.run();
  EXPECT_EQ(grid.best_site().id(), SiteId(1));
  EXPECT_DOUBLE_EQ(grid.cpu_seconds_consumed(), 4500.0);
}

TEST(Grid, SnapshotAllCoversEverySite) {
  sim::Simulation sim;
  Rng rng(4);
  Grid grid(sim, TopologySpec::generate(25, 1000, rng));
  const auto snapshots = grid.snapshot_all();
  ASSERT_EQ(snapshots.size(), 25u);
  for (std::size_t i = 0; i < snapshots.size(); ++i) {
    EXPECT_EQ(snapshots[i].site, SiteId(i));
    EXPECT_EQ(snapshots[i].free_cpus, snapshots[i].total_cpus);
  }
}

TEST(VoCatalog, UniformBuilder) {
  const VoCatalog catalog = VoCatalog::uniform(3, 4);
  EXPECT_EQ(catalog.vo_count(), 3u);
  EXPECT_EQ(catalog.group_count(), 12u);
  EXPECT_EQ(catalog.user_count(), 12u);
  EXPECT_EQ(catalog.vo_name(VoId(1)), "vo1");
  EXPECT_EQ(catalog.groups_of(VoId(2)).size(), 4u);
  const GroupId g = catalog.groups_of(VoId(2))[1];
  EXPECT_EQ(catalog.group_vo(g), VoId(2));
  EXPECT_EQ(catalog.group_name(g), "vo2.g1");
}

TEST(VoCatalog, UserGroupLinks) {
  const VoCatalog catalog = VoCatalog::uniform(2, 2);
  for (std::size_t u = 0; u < catalog.user_count(); ++u) {
    const GroupId g = catalog.user_group(UserId(u));
    EXPECT_LT(g.value(), catalog.group_count());
  }
}

TEST(VoCatalog, ManualConstruction) {
  VoCatalog catalog;
  const VoId cms = catalog.add_vo("cms");
  const VoId atlas = catalog.add_vo("atlas");
  const GroupId higgs = catalog.add_group(cms, "cms.higgs");
  const UserId alice = catalog.add_user(higgs, "alice");
  EXPECT_EQ(catalog.vo_name(atlas), "atlas");
  EXPECT_EQ(catalog.group_vo(higgs), cms);
  EXPECT_EQ(catalog.user_group(alice), higgs);
}

/// Property sweep: generated grids always hit the site count and stay
/// within a factor of the CPU budget across scales.
class TopologyProperty : public ::testing::TestWithParam<int> {};

TEST_P(TopologyProperty, BudgetRoughlyRespected) {
  const int scale = GetParam();
  Rng rng{std::uint64_t(scale)};
  const TopologySpec spec = TopologySpec::osg_scaled(scale, rng);
  EXPECT_EQ(spec.sites.size(), 30u * std::size_t(scale));
  const double target = double(TopologySpec::osg2005().total_cpus()) * scale;
  EXPECT_GT(double(spec.total_cpus()), target * 0.7);
  EXPECT_LT(double(spec.total_cpus()), target * 1.5);
}

INSTANTIATE_TEST_SUITE_P(Scales, TopologyProperty, ::testing::Values(1, 2, 5, 10, 20));

}  // namespace
}  // namespace digruber::grid
