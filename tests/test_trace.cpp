#include "digruber/trace/trace.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <sstream>
#include <vector>

#include "digruber/common/rng.hpp"
#include "digruber/trace/export.hpp"
#include "digruber/trace/histogram.hpp"

namespace digruber::trace {
namespace {

// --- LogHistogram ----------------------------------------------------------

TEST(LogHistogram, EmptyIsZero) {
  LogHistogram h;
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
  EXPECT_EQ(h.p50(), 0);
  EXPECT_EQ(h.mean(), 0.0);
}

TEST(LogHistogram, ExactBelowSubBucketCount) {
  // Values below sub_buckets land in unit-width buckets: quantiles exact.
  LogHistogram h(128);
  for (std::int64_t v = 0; v < 100; ++v) h.record(v);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 99);
  EXPECT_EQ(h.quantile(0.5), 49);   // ceil(0.5*100) = 50th sample = value 49
  EXPECT_EQ(h.quantile(0.01), 0);
  EXPECT_EQ(h.quantile(0.0), 0);
  EXPECT_EQ(h.quantile(1.0), 99);
}

TEST(LogHistogram, BoundedRelativeErrorVsExact) {
  // Log-normal-ish latencies across five decades; every quantile must fall
  // within the documented relative-error bound of the exact answer.
  LogHistogram h(128);
  Rng rng(42);
  std::vector<std::int64_t> exact;
  for (int i = 0; i < 20000; ++i) {
    const double u = rng.uniform();
    const auto v = std::int64_t(std::pow(10.0, 1.0 + 5.0 * u));
    exact.push_back(v);
    h.record(v);
  }
  std::sort(exact.begin(), exact.end());
  for (const double q : {0.5, 0.9, 0.95, 0.99, 0.999}) {
    const std::size_t rank =
        std::min(exact.size() - 1,
                 std::size_t(std::ceil(q * double(exact.size()))) - 1);
    const double truth = double(exact[rank]);
    const double est = double(h.quantile(q));
    EXPECT_NEAR(est, truth, truth * 2.0 * h.max_relative_error())
        << "q=" << q;
  }
  EXPECT_EQ(h.min(), exact.front());
  EXPECT_EQ(h.max(), exact.back());
}

TEST(LogHistogram, QuantileClampedToObservedRange) {
  // A single huge value: the bucket representative (range midpoint) must
  // never leak outside the exact observed min/max.
  LogHistogram h;
  h.record(1'000'003);
  EXPECT_EQ(h.quantile(0.5), 1'000'003);
  EXPECT_EQ(h.p99(), 1'000'003);
}

TEST(LogHistogram, NegativeValuesClampAndCount) {
  LogHistogram h;
  h.record(-5);
  h.record(10);
  EXPECT_EQ(h.clamped(), 1u);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.min(), 0);  // the clamp records a zero
  EXPECT_EQ(h.max(), 10);
}

TEST(LogHistogram, MergeMatchesSingleStream) {
  LogHistogram a, b, whole;
  Rng rng(7);
  for (int i = 0; i < 5000; ++i) {
    const auto v = std::int64_t(rng.uniform() * 1e6);
    (i % 2 ? a : b).record(v);
    whole.record(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_EQ(a.min(), whole.min());
  EXPECT_EQ(a.max(), whole.max());
  for (const double q : {0.5, 0.9, 0.99}) {
    EXPECT_EQ(a.quantile(q), whole.quantile(q)) << "q=" << q;
  }
}

TEST(LogHistogram, MonotoneInQ) {
  LogHistogram h;
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) h.record(std::int64_t(rng.uniform() * 1e5));
  std::int64_t prev = h.quantile(0.0);
  for (double q = 0.05; q <= 1.0; q += 0.05) {
    const std::int64_t cur = h.quantile(q);
    EXPECT_GE(cur, prev) << "q=" << q;
    prev = cur;
  }
}

TEST(LogHistogram, BucketsCoverEveryCount) {
  LogHistogram h;
  for (std::int64_t v : {3, 3, 200, 5000, 100000}) h.record(v);
  std::uint64_t total = 0;
  for (const LogHistogram::Bucket& b : h.buckets()) {
    EXPECT_LT(b.lower, b.upper);
    total += b.count;
  }
  EXPECT_EQ(total, h.count());
}

TEST(LogHistogram, ClearResets) {
  LogHistogram h;
  h.record(123);
  h.clear();
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.p50(), 0);
}

// --- Tracer ----------------------------------------------------------------

TEST(Tracer, SpanParentAndTraceInheritance) {
  Tracer t;
  const SpanContext root = t.begin(Category::kClient, 1, "query");
  const SpanContext child =
      t.begin(Category::kClient, 1, "query.attempt", root);
  EXPECT_EQ(child.trace, root.trace);
  EXPECT_NE(child.span, root.span);
  t.end(Category::kClient, 1, "query.attempt", child);
  t.end(Category::kClient, 1, "query", root);

  const auto events = t.query();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[1].parent, root.span);  // child begin points at root
  EXPECT_EQ(events[0].parent, 0u);         // root has no parent
  for (const TraceEvent& e : events) EXPECT_EQ(e.trace, root.trace);
}

TEST(Tracer, FreshRootsGetDistinctTraces) {
  Tracer t;
  const SpanContext a = t.begin(Category::kClient, 1, "query");
  const SpanContext b = t.begin(Category::kClient, 2, "query");
  EXPECT_NE(a.trace, b.trace);
}

TEST(Tracer, RingWrapKeepsNewestAndCountsDropped) {
  TracerOptions options;
  options.ring_capacity = 8;
  Tracer t(options);
  for (int i = 0; i < 20; ++i) {
    t.instant(Category::kNet, 5, "net.send", {}, i);
  }
  const Tracer::RingStats stats = t.ring_stats(Category::kNet, 5);
  EXPECT_EQ(stats.recorded, 20u);
  EXPECT_EQ(stats.kept, 8u);
  EXPECT_EQ(stats.dropped, 12u);
  EXPECT_EQ(t.total_recorded(), 20u);
  EXPECT_EQ(t.total_dropped(), 12u);

  // The survivors are exactly the 8 newest events (a0 = 12..19).
  const auto events = t.query();
  ASSERT_EQ(events.size(), 8u);
  std::vector<std::int64_t> kept;
  for (const TraceEvent& e : events) kept.push_back(e.a0);
  std::sort(kept.begin(), kept.end());
  for (int i = 0; i < 8; ++i) EXPECT_EQ(kept[std::size_t(i)], 12 + i);
}

TEST(Tracer, RingsAreIsolatedPerActor) {
  TracerOptions options;
  options.ring_capacity = 4;
  Tracer t(options);
  for (int i = 0; i < 10; ++i) t.instant(Category::kNet, 1, "net.send");
  t.instant(Category::kNet, 2, "net.send");
  EXPECT_EQ(t.ring_stats(Category::kNet, 1).dropped, 6u);
  EXPECT_EQ(t.ring_stats(Category::kNet, 2).dropped, 0u);
  EXPECT_EQ(t.actors().size(), 2u);
}

TEST(Tracer, QueryFilters) {
  Tracer t;
  const SpanContext q = t.begin(Category::kClient, 1, "query");
  t.instant(Category::kDp, 2, "dp.get_site_loads", q);
  t.instant(Category::kNet, 3, "net.send");
  t.end(Category::kClient, 1, "query", q);

  Tracer::Filter by_cat;
  by_cat.category = Category::kDp;
  EXPECT_EQ(t.query(by_cat).size(), 1u);

  Tracer::Filter by_actor;
  by_actor.actor = 1;
  EXPECT_EQ(t.query(by_actor).size(), 2u);

  Tracer::Filter by_trace;
  by_trace.trace = q.trace;
  EXPECT_EQ(t.query(by_trace).size(), 3u);  // net.send has no trace

  Tracer::Filter by_name;
  by_name.name = "net.send";
  EXPECT_EQ(t.query(by_name).size(), 1u);
}

TEST(Tracer, AmbientContextStack) {
  Tracer t;
  EXPECT_FALSE(t.ambient().valid());
  const SpanContext outer = t.begin(Category::kClient, 1, "outer");
  t.push_context(outer);
  EXPECT_EQ(t.ambient().span, outer.span);
  const SpanContext inner = t.begin(Category::kClient, 1, "inner", outer);
  t.push_context(inner);
  EXPECT_EQ(t.ambient().span, inner.span);
  t.pop_context();
  EXPECT_EQ(t.ambient().span, outer.span);
  t.pop_context();
  EXPECT_FALSE(t.ambient().valid());
  t.pop_context();  // underflow is a no-op
}

TEST(Tracer, ContextGuardRequiresSession) {
  Tracer t;
  TraceSession session(t);
  const SpanContext ctx = t.begin(Category::kClient, 1, "span");
  {
    ContextGuard guard(ctx);
    EXPECT_EQ(current()->ambient().span, ctx.span);
  }
  EXPECT_FALSE(current()->ambient().valid());
}

TEST(Tracer, RpcPropagationTakeOnce) {
  Tracer t;
  const SpanContext ctx = t.begin(Category::kClient, 1, "query");
  t.propagate_rpc(9, 1234, ctx);
  const SpanContext taken = t.take_rpc(9, 1234);
  EXPECT_EQ(taken.span, ctx.span);
  EXPECT_FALSE(t.take_rpc(9, 1234).valid());  // consumed
  EXPECT_FALSE(t.take_rpc(9, 9999).valid());  // never registered

  t.propagate_rpc(9, 77, ctx);
  t.drop_rpc(9, 77);
  EXPECT_FALSE(t.take_rpc(9, 77).valid());
}

TEST(Tracer, SessionInstallsAndRestores) {
  EXPECT_EQ(current(), nullptr);
  Tracer outer_tracer;
  {
    TraceSession outer(outer_tracer);
    EXPECT_EQ(current(), &outer_tracer);
    Tracer inner_tracer;
    {
      TraceSession inner(inner_tracer);
      EXPECT_EQ(current(), &inner_tracer);
    }
    EXPECT_EQ(current(), &outer_tracer);
  }
  EXPECT_EQ(current(), nullptr);
}

// --- Exporters -------------------------------------------------------------

TEST(Export, ChromeTraceShape) {
  Tracer t;
  const SpanContext q = t.begin(Category::kClient, 1, "query", {}, 11, 22);
  t.instant(Category::kDp, 2, "dp.get_site_loads", q);
  t.counter(Category::kNet, 3, "queue_depth", 4);
  t.end(Category::kClient, 1, "query", q);

  std::ostringstream os;
  write_chrome_trace(os, t);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"B\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"E\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(json.find("thread_name"), std::string::npos);
  EXPECT_NE(json.find("client/1"), std::string::npos);
  // Flow events stitch the cross-actor correlation.
  EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);
  // Balanced braces/brackets (cheap well-formedness check).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST(Export, JsonlOneObjectPerEvent) {
  Tracer t;
  const SpanContext q = t.begin(Category::kClient, 1, "query");
  t.end(Category::kClient, 1, "query", q);
  t.instant(Category::kScenario, 0, "scenario.start");

  std::ostringstream os;
  write_jsonl(os, t);
  const std::string text = os.str();
  std::size_t lines = 0;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    ++lines;
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
  }
  EXPECT_EQ(lines, 3u);
  EXPECT_NE(text.find("\"kind\":\"B\""), std::string::npos);
  EXPECT_NE(text.find("\"name\":\"scenario.start\""), std::string::npos);
}

}  // namespace
}  // namespace digruber::trace
