// End-to-end tracing: span propagation across the rpc layer and failover
// retries, fault markers, and the zero-perturbation guarantee (a traced
// run produces the identical simulation as an untraced one).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "digruber/experiments/scenario.hpp"
#include "digruber/trace/export.hpp"
#include "digruber/trace/trace.hpp"

namespace digruber::experiments {
namespace {

ScenarioConfig small_config() {
  ScenarioConfig cfg;
  cfg.name = "trace-test";
  cfg.seed = 11;
  cfg.n_dps = 3;
  cfg.n_clients = 12;
  cfg.duration = sim::Duration::minutes(10);
  cfg.grid_scale = 1;
  cfg.workload.n_vos = 3;
  cfg.workload.groups_per_vo = 2;
  return cfg;
}

ScenarioConfig faulted_config() {
  ScenarioConfig cfg = small_config();
  cfg.fault_plan.crash(sim::Time::from_seconds(120), 0)
      .restart(sim::Time::from_seconds(270), 0)
      .partition(sim::Time::from_seconds(360), {{0}, {1, 2}})
      .heal(sim::Time::from_seconds(450));
  return cfg;
}

TEST(TraceScenario, TracingDoesNotPerturbTheRun) {
  // Identical config with and without a tracer: every simulation-visible
  // number must match exactly. Tracing draws no randomness and schedules
  // no events, so even a traced run stays byte-reproducible.
  const ScenarioResult plain = run_scenario(faulted_config());

  trace::Tracer tracer;
  ScenarioConfig traced_cfg = faulted_config();
  traced_cfg.tracer = &tracer;
  const ScenarioResult traced = run_scenario(traced_cfg);

  EXPECT_EQ(plain.sim_events, traced.sim_events);
  EXPECT_EQ(plain.jobs_completed, traced.jobs_completed);
  EXPECT_EQ(plain.trace.entries(), traced.trace.entries());
  EXPECT_DOUBLE_EQ(plain.all.response_s, traced.all.response_s);
  EXPECT_DOUBLE_EQ(plain.all.accuracy, traced.all.accuracy);
  EXPECT_EQ(plain.resilience.failovers, traced.resilience.failovers);
  EXPECT_EQ(plain.resilience.drops_partition, traced.resilience.drops_partition);
  EXPECT_GT(tracer.total_recorded(), 0u);
}

TEST(TraceScenario, TracerUninstalledAfterRun) {
  trace::Tracer tracer;
  ScenarioConfig cfg = small_config();
  cfg.tracer = &tracer;
  run_scenario(cfg);
  EXPECT_EQ(trace::current(), nullptr);
}

TEST(TraceScenario, QuerySpansPropagateAcrossRpcFailover) {
  trace::Tracer tracer;
  ScenarioConfig cfg = faulted_config();
  cfg.tracer = &tracer;
  const ScenarioResult r = run_scenario(cfg);
  ASSERT_GT(r.resilience.failovers, 0u);

  // Find a query trace that needed more than one attempt (its primary was
  // down): it must carry a failover marker, and the rpc serve span of the
  // decision point that finally answered must be stitched into the SAME
  // trace id — that is the cross-process correlation the subsystem exists
  // to provide.
  trace::Tracer::Filter failovers;
  failovers.name = "query.failover";
  const std::vector<trace::TraceEvent> markers = tracer.query(failovers);
  ASSERT_FALSE(markers.empty());

  bool found_correlated = false;
  for (const trace::TraceEvent& marker : markers) {
    trace::Tracer::Filter in_trace;
    in_trace.trace = marker.trace;
    const std::vector<trace::TraceEvent> events = tracer.query(in_trace);

    std::size_t attempt_begins = 0;
    bool has_serve = false, has_net = false, has_dp_handler = false;
    std::set<std::uint64_t> actors_by_cat[std::size_t(trace::Category::kCount)];
    for (const trace::TraceEvent& e : events) {
      actors_by_cat[std::size_t(e.category)].insert(e.actor);
      const std::string name = e.name;
      if (name == "query.attempt" && e.kind == trace::EventKind::kBegin) {
        ++attempt_begins;
      }
      if (name == "rpc.serve") has_serve = true;
      if (name == "net.deliver" || name == "net.send") has_net = true;
      if (name == "dp.get_site_loads") has_dp_handler = true;
    }
    if (attempt_begins >= 2 && has_serve && has_net && has_dp_handler) {
      // Client + at least one rpc actor + transport all in one tree.
      EXPECT_FALSE(actors_by_cat[std::size_t(trace::Category::kClient)].empty());
      EXPECT_FALSE(actors_by_cat[std::size_t(trace::Category::kRpc)].empty());
      found_correlated = true;
      break;
    }
  }
  EXPECT_TRUE(found_correlated)
      << "no failover trace correlates client attempts with a dp serve";

  // Fault markers recorded at the plan's times, on the scenario track.
  trace::Tracer::Filter scenario;
  scenario.category = trace::Category::kScenario;
  std::set<std::string> names;
  for (const trace::TraceEvent& e : tracer.query(scenario)) names.insert(e.name);
  EXPECT_TRUE(names.count("scenario.start"));
  EXPECT_TRUE(names.count("fault.crash"));
  EXPECT_TRUE(names.count("fault.restart"));
  EXPECT_TRUE(names.count("fault.partition"));
  EXPECT_TRUE(names.count("fault.heal"));
  EXPECT_TRUE(names.count("scenario.end"));
}

TEST(TraceScenario, ServeSpanJoinsCallerTrace) {
  // Even without faults, every brokering query's rpc.serve span on the
  // decision point must join the client's trace (propagation through the
  // correlation side channel, not the wire).
  trace::Tracer tracer;
  ScenarioConfig cfg = small_config();
  cfg.tracer = &tracer;
  run_scenario(cfg);

  trace::Tracer::Filter roots;
  roots.name = "query";
  roots.category = trace::Category::kClient;
  const std::vector<trace::TraceEvent> queries = tracer.query(roots);
  ASSERT_FALSE(queries.empty());

  std::size_t joined = 0, inspected = 0;
  for (const trace::TraceEvent& q : queries) {
    if (q.kind != trace::EventKind::kBegin) continue;
    ++inspected;
    trace::Tracer::Filter serves;
    serves.trace = q.trace;
    serves.name = "rpc.serve";
    if (!tracer.query(serves).empty()) ++joined;
    if (inspected >= 50) break;
  }
  // Ring wrap can drop old events, but the vast majority of retained query
  // roots must have a correlated serve span.
  EXPECT_GT(joined * 10, inspected * 8);
}

TEST(TraceScenario, ChromeExportOfScenarioIsBalanced) {
  trace::Tracer tracer;
  ScenarioConfig cfg = faulted_config();
  cfg.tracer = &tracer;
  run_scenario(cfg);

  std::ostringstream os;
  trace::write_chrome_trace(os, tracer);
  const std::string json = os.str();
  EXPECT_GT(json.size(), 1000u);
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
  EXPECT_NE(json.find("fault.crash"), std::string::npos);
  EXPECT_NE(json.find("query.failover"), std::string::npos);
  EXPECT_NE(json.find("rpc.serve"), std::string::npos);
}

}  // namespace
}  // namespace digruber::experiments
