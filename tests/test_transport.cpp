#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "digruber/net/inproc_transport.hpp"
#include "digruber/net/sim_transport.hpp"

namespace digruber::net {
namespace {

class RecordingEndpoint : public Endpoint {
 public:
  void on_packet(Packet packet) override { received.push_back(std::move(packet)); }
  std::vector<Packet> received;
};

TEST(SimTransport, DeliversAfterWanDelay) {
  sim::Simulation sim;
  WanParams params;
  params.jitter_cv = 0.0;
  SimTransport transport(sim, WanModel(params, 1));

  RecordingEndpoint a, b;
  const NodeId na = transport.attach(a);
  const NodeId nb = transport.attach(b);

  transport.send(Packet{na, nb, {1, 2, 3}});
  EXPECT_TRUE(b.received.empty());  // not yet delivered
  sim.run();
  ASSERT_EQ(b.received.size(), 1u);
  EXPECT_EQ(b.received[0].src, na);
  EXPECT_EQ(b.received[0].payload, (std::vector<std::uint8_t>{1, 2, 3}));
  EXPECT_GT(sim.now().to_seconds(), 0.0);  // WAN latency elapsed
  EXPECT_EQ(transport.packets_sent(), 1u);
}

TEST(SimTransport, UnknownDestinationDropped) {
  sim::Simulation sim;
  SimTransport transport(sim, WanModel(WanParams{}, 2));
  RecordingEndpoint a;
  const NodeId na = transport.attach(a);
  transport.send(Packet{na, NodeId(999), {1}});
  sim.run();  // must not crash
  EXPECT_TRUE(a.received.empty());
}

TEST(SimTransport, DetachStopsDelivery) {
  sim::Simulation sim;
  SimTransport transport(sim, WanModel(WanParams{}, 3));
  RecordingEndpoint a, b;
  const NodeId na = transport.attach(a);
  const NodeId nb = transport.attach(b);
  transport.send(Packet{na, nb, {1}});
  transport.detach(nb);  // detach while in flight
  sim.run();
  EXPECT_TRUE(b.received.empty());
}

TEST(SimTransport, LossyLinkDropsSomePackets) {
  sim::Simulation sim;
  WanParams params;
  params.loss_rate = 0.5;
  SimTransport transport(sim, WanModel(params, 4));
  RecordingEndpoint a, b;
  const NodeId na = transport.attach(a);
  const NodeId nb = transport.attach(b);
  for (int i = 0; i < 200; ++i) transport.send(Packet{na, nb, {std::uint8_t(i)}});
  sim.run();
  EXPECT_GT(transport.packets_dropped(), 50u);
  EXPECT_LT(transport.packets_dropped(), 150u);
  EXPECT_EQ(b.received.size(), 200u - transport.packets_dropped());
  // Every one of those drops was the WAN loss coin, not a fault.
  EXPECT_EQ(transport.packets_dropped(DropCause::kLoss), transport.packets_dropped());
  EXPECT_EQ(transport.packets_dropped(DropCause::kPartition), 0u);
  EXPECT_EQ(transport.packets_dropped(DropCause::kUnknownDestination), 0u);
}

TEST(SimTransport, UnknownDestinationDropsCountedByCause) {
  sim::Simulation sim;
  SimTransport transport(sim, WanModel(WanParams{}, 4));
  RecordingEndpoint a, b;
  const NodeId na = transport.attach(a);
  const NodeId nb = transport.attach(b);
  transport.send(Packet{na, NodeId(999), {1}});  // never attached
  transport.send(Packet{na, nb, {2}});
  transport.detach(nb);  // detach while the second packet is in flight
  sim.run();
  EXPECT_EQ(transport.packets_dropped(DropCause::kUnknownDestination), 2u);
  EXPECT_EQ(transport.packets_dropped(), 2u);
  EXPECT_EQ(transport.packets_dropped(DropCause::kLoss), 0u);
}

TEST(SimTransport, PartitionBlocksTrafficUntilHealed) {
  sim::Simulation sim;
  SimTransport transport(sim, WanModel(WanParams{}, 5));
  RecordingEndpoint a, b;
  const NodeId na = transport.attach(a);
  const NodeId nb = transport.attach(b);

  transport.set_island(nb, 1);
  EXPECT_TRUE(transport.partitioned(na, nb));
  transport.send(Packet{na, nb, {1}});
  sim.run();
  EXPECT_TRUE(b.received.empty());
  EXPECT_EQ(transport.packets_dropped(DropCause::kPartition), 1u);

  transport.heal_partition();
  EXPECT_FALSE(transport.partitioned(na, nb));
  transport.send(Packet{na, nb, {2}});
  sim.run();
  ASSERT_EQ(b.received.size(), 1u);
  EXPECT_EQ(transport.packets_dropped(), 1u);  // no new drops after the heal
}

TEST(SimTransport, ReattachRestoresDelivery) {
  sim::Simulation sim;
  SimTransport transport(sim, WanModel(WanParams{}, 6));
  RecordingEndpoint a, b, b2;
  const NodeId na = transport.attach(a);
  const NodeId nb = transport.attach(b);
  transport.detach(nb);
  transport.send(Packet{na, nb, {1}});
  sim.run();
  EXPECT_EQ(transport.packets_dropped(DropCause::kUnknownDestination), 1u);

  EXPECT_FALSE(transport.reattach(na, b2));           // address still in use
  EXPECT_FALSE(transport.reattach(NodeId(999), b2));  // never issued
  ASSERT_TRUE(transport.reattach(nb, b2));
  transport.send(Packet{na, nb, {2}});
  sim.run();
  ASSERT_EQ(b2.received.size(), 1u);  // same address, new endpoint
  EXPECT_TRUE(b.received.empty());
}

class CountingEndpoint : public Endpoint {
 public:
  void on_packet(Packet) override { count.fetch_add(1, std::memory_order_relaxed); }
  std::atomic<int> count{0};
};

TEST(InProcTransport, DeliversAcrossThreads) {
  InProcTransport transport;
  CountingEndpoint a, b;
  const NodeId na = transport.attach(a);
  const NodeId nb = transport.attach(b);
  for (int i = 0; i < 100; ++i) transport.send(Packet{na, nb, {std::uint8_t(i)}});
  transport.drain();
  EXPECT_EQ(b.count.load(), 100);
  EXPECT_EQ(a.count.load(), 0);
}

/// Endpoint that forwards each packet to another node (tests that drain
/// handles delivery chains).
class ForwardingEndpoint : public Endpoint {
 public:
  ForwardingEndpoint(InProcTransport& transport, std::atomic<int>& sink_count)
      : transport_(transport), sink_count_(sink_count) {}

  void configure(NodeId self, NodeId next) {
    self_ = self;
    next_ = next;
  }

  void on_packet(Packet packet) override {
    if (next_.valid()) {
      transport_.send(Packet{self_, next_, std::move(packet.payload)});
    } else {
      sink_count_.fetch_add(1, std::memory_order_relaxed);
    }
  }

 private:
  InProcTransport& transport_;
  std::atomic<int>& sink_count_;
  NodeId self_, next_;
};

TEST(InProcTransport, DrainWaitsForForwardingChains) {
  InProcTransport transport;
  std::atomic<int> sink{0};
  ForwardingEndpoint e1(transport, sink), e2(transport, sink), e3(transport, sink);
  const NodeId n1 = transport.attach(e1);
  const NodeId n2 = transport.attach(e2);
  const NodeId n3 = transport.attach(e3);
  e1.configure(n1, n2);
  e2.configure(n2, n3);
  e3.configure(n3, NodeId{});

  for (int i = 0; i < 50; ++i) transport.send(Packet{NodeId(999), n1, {1}});
  transport.drain();
  EXPECT_EQ(sink.load(), 50);
}

TEST(InProcTransport, DetachedMailboxDropsSends) {
  InProcTransport transport;
  CountingEndpoint a, b;
  const NodeId na = transport.attach(a);
  const NodeId nb = transport.attach(b);
  transport.detach(nb);
  transport.send(Packet{na, nb, {1}});
  transport.drain();
  EXPECT_EQ(b.count.load(), 0);
  EXPECT_EQ(transport.packets_dropped(), 1u);
}

TEST(InProcTransport, CountsUnknownDestinationSends) {
  InProcTransport transport;
  CountingEndpoint a;
  const NodeId na = transport.attach(a);
  transport.send(Packet{na, NodeId(77), {1}});  // never attached
  transport.send(Packet{na, NodeId(78), {2}});
  transport.drain();
  EXPECT_EQ(transport.packets_dropped(), 2u);
  EXPECT_EQ(a.count.load(), 0);
}

/// Endpoint that checks each delivered payload against the expected frame
/// and deliberately retains a reference past on_packet returning — the
/// pattern an rpc reply takes when its body outlives the packet.
class VerifyingEndpoint : public Endpoint {
 public:
  explicit VerifyingEndpoint(const Buffer& expected) : expected_(expected) {}

  void on_packet(Packet packet) override {
    if (packet.payload == expected_) {
      good_.fetch_add(1, std::memory_order_relaxed);
    } else {
      bad_.fetch_add(1, std::memory_order_relaxed);
    }
    retained_ = packet.payload.slice(1, packet.payload.size());
  }

  void release() { retained_ = Buffer(); }
  [[nodiscard]] int good() const { return good_.load(std::memory_order_relaxed); }
  [[nodiscard]] int bad() const { return bad_.load(std::memory_order_relaxed); }

 private:
  const Buffer& expected_;
  Buffer retained_;  // touched only by this endpoint's mailbox thread
  std::atomic<int> good_{0};
  std::atomic<int> bad_{0};
};

TEST(InProcTransport, ReattachRacesSharedBufferDelivery) {
  // One frame, encoded once, fanned out across threads while the receiving
  // endpoint detaches and reattaches: references are dropped concurrently
  // by sender threads, mailbox queues being destroyed mid-flight, and
  // delivery threads. The atomic refcount must keep the bytes alive until
  // the last holder lets go — ASan/UBSan turns any violation into a
  // hard failure.
  std::vector<std::uint8_t> bytes(256);
  for (std::size_t i = 0; i < bytes.size(); ++i) bytes[i] = std::uint8_t(i);
  const Buffer frame(std::move(bytes));

  InProcTransport transport;
  VerifyingEndpoint stable(frame), churned(frame), churned2(frame);
  const NodeId ns = transport.attach(stable);
  const NodeId nc = transport.attach(churned);

  std::atomic<bool> stop{false};
  std::vector<std::jthread> senders;
  for (int t = 0; t < 3; ++t) {
    senders.emplace_back([&transport, &frame, ns, nc] {
      for (int i = 0; i < 400; ++i) {
        transport.send(Packet{NodeId(1000), ns, frame});
        transport.send(Packet{NodeId(1000), nc, frame});
      }
    });
  }
  // Churn the second endpoint's registration while deliveries are in
  // flight; detach drops that mailbox's queued Buffer references on the
  // spot (sends during the gap count as drops, not corruption).
  VerifyingEndpoint* receivers[] = {&churned2, &churned};
  for (int round = 0; round < 50; ++round) {
    transport.detach(nc);
    ASSERT_TRUE(transport.reattach(nc, *receivers[round % 2]));
  }
  senders.clear();  // join
  transport.drain();

  EXPECT_EQ(stable.good(), 1200);
  EXPECT_EQ(stable.bad(), 0);
  EXPECT_EQ(churned.bad(), 0);
  EXPECT_EQ(churned2.bad(), 0);
  EXPECT_EQ(std::uint64_t(churned.good()) + std::uint64_t(churned2.good()) +
                transport.packets_dropped(),
            1200u);

  // Once every retained reference is released, the original is the sole
  // owner again — nothing leaked a storage reference.
  transport.detach(ns);
  transport.detach(nc);
  stable.release();
  churned.release();
  churned2.release();
  EXPECT_EQ(frame.owners(), 1);
}

TEST(InProcTransport, ManySendersOneReceiver) {
  InProcTransport transport;
  CountingEndpoint sink;
  const NodeId ns = transport.attach(sink);
  std::vector<std::jthread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&transport, ns] {
      for (int i = 0; i < 250; ++i) {
        transport.send(Packet{NodeId(1000), ns, {std::uint8_t(i)}});
      }
    });
  }
  threads.clear();  // join
  transport.drain();
  EXPECT_EQ(sink.count.load(), 1000);
}

}  // namespace
}  // namespace digruber::net
