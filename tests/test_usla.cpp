#include <gtest/gtest.h>

#include "digruber/usla/document.hpp"
#include "digruber/usla/tree.hpp"

namespace digruber::usla {
namespace {

const char* kSample = R"(
# Example USLA document
agreement osg-shares
context provider=osg consumer=physics
term cms-share: grid -> vo:cms cpu 40+
term atlas-share: grid -> vo:atlas cpu 30
term cdf-share: grid -> vo:cdf cpu 10-
term higgs-share: vo:cms -> group:cms.higgs cpu 50
goal qtime < 600
goal accuracy > 0.9
)";

TEST(UslaParse, ParsesFullDocument) {
  const auto result = parse_agreement(kSample);
  ASSERT_TRUE(result.ok()) << result.error();
  const Agreement& a = result.value();
  EXPECT_EQ(a.name, "osg-shares");
  EXPECT_EQ(a.context_provider, "osg");
  EXPECT_EQ(a.context_consumer, "physics");
  ASSERT_EQ(a.terms.size(), 4u);
  EXPECT_EQ(a.terms[0].name, "cms-share");
  EXPECT_EQ(a.terms[0].consumer.kind, EntityRef::Kind::kVo);
  EXPECT_EQ(a.terms[0].consumer.name, "cms");
  EXPECT_DOUBLE_EQ(a.terms[0].share.percent, 40.0);
  EXPECT_EQ(a.terms[0].share.bound, BoundKind::kUpperLimit);
  EXPECT_EQ(a.terms[1].share.bound, BoundKind::kTarget);
  EXPECT_EQ(a.terms[2].share.bound, BoundKind::kLowerLimit);
  EXPECT_EQ(a.terms[3].provider.kind, EntityRef::Kind::kVo);
  ASSERT_EQ(a.goals.size(), 2u);
  EXPECT_EQ(a.goals[0].metric, "qtime");
  EXPECT_EQ(a.goals[0].relation, "<");
  EXPECT_DOUBLE_EQ(a.goals[1].threshold, 0.9);
}

TEST(UslaParse, FormatRoundtrips) {
  const Agreement a = parse_agreement(kSample).value();
  const std::string text = format_agreement(a);
  const auto again = parse_agreement(text);
  ASSERT_TRUE(again.ok()) << again.error();
  const Agreement& b = again.value();
  EXPECT_EQ(b.name, a.name);
  ASSERT_EQ(b.terms.size(), a.terms.size());
  for (std::size_t i = 0; i < a.terms.size(); ++i) {
    EXPECT_EQ(b.terms[i].provider, a.terms[i].provider);
    EXPECT_EQ(b.terms[i].consumer, a.terms[i].consumer);
    EXPECT_DOUBLE_EQ(b.terms[i].share.percent, a.terms[i].share.percent);
    EXPECT_EQ(b.terms[i].share.bound, a.terms[i].share.bound);
  }
  EXPECT_EQ(b.goals.size(), a.goals.size());
}

TEST(UslaParse, RejectsMalformedInput) {
  EXPECT_FALSE(parse_agreement("bogus line\n").ok());
  EXPECT_FALSE(parse_agreement("agreement\n").ok());
  EXPECT_FALSE(parse_agreement("term x grid -> vo:a cpu 10\n").ok());   // missing colon
  EXPECT_FALSE(parse_agreement("term x: grid => vo:a cpu 10\n").ok());  // bad arrow
  EXPECT_FALSE(parse_agreement("term x: grid -> vo:a cpu 101\n").ok()); // >100%
  EXPECT_FALSE(parse_agreement("term x: grid -> vo:a cpu -5\n").ok());
  EXPECT_FALSE(parse_agreement("term x: grid -> vo:a disk 10\n").ok()); // resource
  EXPECT_FALSE(parse_agreement("term x: blah:a -> vo:a cpu 10\n").ok());
  EXPECT_FALSE(parse_agreement("goal qtime ~ 5\n").ok());
  EXPECT_FALSE(parse_agreement("goal qtime < abc\n").ok());
  EXPECT_FALSE(parse_agreement("context provider\n").ok());
}

TEST(UslaValidate, DetectsDuplicatesAndOversubscription) {
  Agreement a = parse_agreement(kSample).value();
  EXPECT_TRUE(validate(a).ok());

  Agreement dup = a;
  dup.terms.push_back(dup.terms[0]);
  EXPECT_FALSE(validate(dup).ok());

  Agreement over;
  for (int i = 0; i < 3; ++i) {
    ServiceTerm t;
    t.name = "t" + std::to_string(i);
    t.provider = EntityRef{EntityRef::Kind::kGrid, ""};
    t.consumer = EntityRef{EntityRef::Kind::kVo, "vo" + std::to_string(i)};
    t.share = ShareSpec{40.0, BoundKind::kTarget};
    over.terms.push_back(t);
  }
  EXPECT_FALSE(validate(over).ok());  // 3 x 40% targets > 100%

  // Upper limits may oversubscribe (they are caps, not reservations).
  for (auto& t : over.terms) t.share.bound = BoundKind::kUpperLimit;
  EXPECT_TRUE(validate(over).ok());
}

grid::VoCatalog two_vo_catalog() {
  grid::VoCatalog catalog;
  const VoId cms = catalog.add_vo("cms");
  const VoId atlas = catalog.add_vo("atlas");
  const GroupId higgs = catalog.add_group(cms, "cms.higgs");
  catalog.add_group(cms, "cms.susy");
  catalog.add_group(atlas, "atlas.top");
  catalog.add_user(higgs, "alice");
  return catalog;
}

TEST(AllocationTree, BuildsAndResolves) {
  const grid::VoCatalog catalog = two_vo_catalog();
  const Agreement a = parse_agreement(R"(
agreement t
term c: grid -> vo:cms cpu 60+
term a: grid -> vo:atlas cpu 30
term h: vo:cms -> group:cms.higgs cpu 50+
)").value();
  const auto tree = AllocationTree::build({a}, catalog);
  ASSERT_TRUE(tree.ok()) << tree.error();

  const auto cms = tree.value().vo_share(VoId(0));
  ASSERT_TRUE(cms.has_value());
  EXPECT_DOUBLE_EQ(cms->percent, 60.0);
  EXPECT_EQ(cms->bound, BoundKind::kUpperLimit);

  EXPECT_TRUE(tree.value().vo_share(VoId(1)).has_value());
  EXPECT_TRUE(tree.value().group_share(GroupId(0)).has_value());
  EXPECT_FALSE(tree.value().group_share(GroupId(1)).has_value());
}

TEST(AllocationTree, SiteSpecificOverridesGridRule) {
  const grid::VoCatalog catalog = two_vo_catalog();
  const std::map<std::string, SiteId> sites{{"fnal", SiteId(3)}};
  const Agreement a = parse_agreement(R"(
agreement t
term wide: grid -> vo:cms cpu 20+
term local: site:fnal -> vo:cms cpu 80+
)").value();
  const auto tree = AllocationTree::build({a}, catalog, sites);
  ASSERT_TRUE(tree.ok()) << tree.error();
  EXPECT_DOUBLE_EQ(tree.value().vo_share(VoId(0))->percent, 20.0);
  EXPECT_DOUBLE_EQ(tree.value().vo_share(VoId(0), SiteId(3))->percent, 80.0);
  EXPECT_DOUBLE_EQ(tree.value().vo_share(VoId(0), SiteId(9))->percent, 20.0);
}

TEST(AllocationTree, RejectsUnknownEntities) {
  const grid::VoCatalog catalog = two_vo_catalog();
  const Agreement bad_vo =
      parse_agreement("agreement t\nterm x: grid -> vo:nosuch cpu 10\n").value();
  EXPECT_FALSE(AllocationTree::build({bad_vo}, catalog).ok());

  const Agreement bad_site =
      parse_agreement("agreement t\nterm x: site:nowhere -> vo:cms cpu 10\n").value();
  EXPECT_FALSE(AllocationTree::build({bad_site}, catalog).ok());

  const Agreement wrong_parent =
      parse_agreement("agreement t\nterm x: vo:atlas -> group:cms.higgs cpu 10\n").value();
  EXPECT_FALSE(AllocationTree::build({wrong_parent}, catalog).ok());
}

grid::SiteSnapshot snapshot(std::int32_t total, std::int32_t free,
                            std::map<VoId, std::int32_t> running = {}) {
  grid::SiteSnapshot s;
  s.site = SiteId(0);
  s.total_cpus = total;
  s.free_cpus = free;
  s.running_per_vo = std::move(running);
  return s;
}

TEST(Evaluator, UpperLimitIsHardCap) {
  const grid::VoCatalog catalog = two_vo_catalog();
  const Agreement a =
      parse_agreement("agreement t\nterm c: grid -> vo:cms cpu 25+\n").value();
  const auto tree = AllocationTree::build({a}, catalog);
  const UslaEvaluator eval(tree.value(), catalog);

  // 25% of 100 CPUs = 25; 10 already running -> 15 headroom.
  EXPECT_EQ(eval.vo_headroom(snapshot(100, 90, {{VoId(0), 10}}), VoId(0)), 15);
  // Free CPUs bound the headroom.
  EXPECT_EQ(eval.vo_headroom(snapshot(100, 5, {{VoId(0), 10}}), VoId(0)), 5);
  // Over quota -> zero, never negative.
  EXPECT_EQ(eval.vo_headroom(snapshot(100, 50, {{VoId(0), 30}}), VoId(0)), 0);
}

TEST(Evaluator, TargetAllowsBurst) {
  const grid::VoCatalog catalog = two_vo_catalog();
  const Agreement a =
      parse_agreement("agreement t\nterm c: grid -> vo:cms cpu 20\n").value();
  const auto tree = AllocationTree::build({a}, catalog);
  EvaluatorOptions options;
  options.target_burst = 1.5;
  const UslaEvaluator eval(tree.value(), catalog, options);
  // Target 20% with 1.5 burst -> effective 30% of 100.
  EXPECT_EQ(eval.vo_headroom(snapshot(100, 100), VoId(0)), 30);
}

TEST(Evaluator, LowerLimitIsNoCap) {
  const grid::VoCatalog catalog = two_vo_catalog();
  const Agreement a =
      parse_agreement("agreement t\nterm c: grid -> vo:cms cpu 10-\n").value();
  const auto tree = AllocationTree::build({a}, catalog);
  const UslaEvaluator eval(tree.value(), catalog);
  EXPECT_EQ(eval.vo_headroom(snapshot(100, 70), VoId(0)), 70);
  EXPECT_DOUBLE_EQ(eval.guarantee_fraction(VoId(0)), 0.10);
  EXPECT_DOUBLE_EQ(eval.guarantee_fraction(VoId(1)), 0.0);
}

TEST(Evaluator, DefaultPolicyOpenVsClosed) {
  const grid::VoCatalog catalog = two_vo_catalog();
  const auto tree = AllocationTree::build({}, catalog);
  const UslaEvaluator open(tree.value(), catalog);
  EXPECT_EQ(open.vo_headroom(snapshot(100, 40), VoId(1)), 40);

  EvaluatorOptions closed_options;
  closed_options.default_open = false;
  const UslaEvaluator closed(tree.value(), catalog, closed_options);
  EXPECT_EQ(closed.vo_headroom(snapshot(100, 40), VoId(1)), 0);
}

TEST(Evaluator, ChainHeadroomAppliesGroupAndUserShares) {
  const grid::VoCatalog catalog = two_vo_catalog();
  const Agreement a = parse_agreement(R"(
agreement t
term c: grid -> vo:cms cpu 50+
term h: vo:cms -> group:cms.higgs cpu 40+
term u: group:cms.higgs -> user:cms.higgs cpu 50+
)").value();
  const auto tree = AllocationTree::build({a}, catalog);
  ASSERT_TRUE(tree.ok()) << tree.error();
  const UslaEvaluator eval(tree.value(), catalog);

  // Site of 200: vo cap 100, group cap 40% of that = 40, user cap 50% of
  // group = 20.
  const auto snap = snapshot(200, 200);
  EXPECT_EQ(eval.vo_headroom(snap, VoId(0)), 100);
  EXPECT_EQ(eval.chain_headroom(snap, VoId(0), GroupId(0), UserId(0), 0, 0), 20);
  // Group usage eats into the group cap.
  EXPECT_EQ(eval.chain_headroom(snap, VoId(0), GroupId(0), UserId(0), 35, 0), 5);
  // User usage eats into the user cap.
  EXPECT_EQ(eval.chain_headroom(snap, VoId(0), GroupId(0), UserId(0), 0, 15), 5);
  EXPECT_EQ(eval.chain_headroom(snap, VoId(0), GroupId(0), UserId(0), 40, 0), 0);
}

TEST(Evaluator, Admissible) {
  const grid::VoCatalog catalog = two_vo_catalog();
  const Agreement a =
      parse_agreement("agreement t\nterm c: grid -> vo:cms cpu 10+\n").value();
  const auto tree = AllocationTree::build({a}, catalog);
  const UslaEvaluator eval(tree.value(), catalog);
  EXPECT_TRUE(eval.admissible(snapshot(100, 100), VoId(0), 10));
  EXPECT_FALSE(eval.admissible(snapshot(100, 100), VoId(0), 11));
}

TEST(Evaluator, VoCapCpusIsTheHeadroomCeiling) {
  const grid::VoCatalog catalog = two_vo_catalog();
  const Agreement a =
      parse_agreement("agreement t\nterm c: grid -> vo:cms cpu 25+\n").value();
  const auto tree = AllocationTree::build({a}, catalog);
  const UslaEvaluator eval(tree.value(), catalog);

  EXPECT_EQ(eval.vo_cap_cpus(SiteId(0), VoId(0), 100), 25);
  EXPECT_EQ(eval.vo_cap_cpus(SiteId(0), VoId(0), 90), 22);  // floor, not round
  // Unruled VO under the open default: the whole site.
  EXPECT_EQ(eval.vo_cap_cpus(SiteId(0), VoId(1), 100), 100);
  // The cap is exactly what vo_headroom enforces from an empty site.
  EXPECT_EQ(eval.vo_headroom(snapshot(100, 100), VoId(0)),
            eval.vo_cap_cpus(SiteId(0), VoId(0), 100));
}

TEST(Evaluator, OverCommitAuditFlagsOnlyBreachedPairs) {
  const grid::VoCatalog catalog = two_vo_catalog();
  const Agreement a = parse_agreement(R"(
agreement t
term c: grid -> vo:cms cpu 25+
term a: grid -> vo:atlas cpu 40+
)").value();
  const auto tree = AllocationTree::build({a}, catalog);
  const UslaEvaluator eval(tree.value(), catalog);

  // Site 0: cms holds 30 of a 25-CPU cap (a split admitted on both sides);
  // atlas is within entitlement. Site 1: everyone within entitlement.
  grid::SiteSnapshot breached =
      snapshot(100, 50, {{VoId(0), 30}, {VoId(1), 20}});
  grid::SiteSnapshot clean = snapshot(200, 150, {{VoId(0), 40}});
  clean.site = SiteId(1);

  const std::vector<VoOverCommit> audit = eval.over_commit_audit({breached, clean});
  ASSERT_EQ(audit.size(), 1u);
  EXPECT_EQ(audit[0].site, SiteId(0));
  EXPECT_EQ(audit[0].vo, VoId(0));
  EXPECT_EQ(audit[0].running, 30);
  EXPECT_EQ(audit[0].cap_cpus, 25);
  EXPECT_EQ(audit[0].excess(), 5);

  // A single honest broker never admits past the cap: fresh state audits
  // clean.
  EXPECT_TRUE(eval.over_commit_audit({clean}).empty());
}

/// Property sweep over bound kinds: headroom is always within [0, free].
class EvaluatorProperty : public ::testing::TestWithParam<char> {};

TEST_P(EvaluatorProperty, HeadroomBounded) {
  const grid::VoCatalog catalog = two_vo_catalog();
  const std::string suffix = GetParam() == 't' ? "" : std::string(1, GetParam());
  const Agreement a =
      parse_agreement("agreement t\nterm c: grid -> vo:cms cpu 35" + suffix + "\n")
          .value();
  const auto tree = AllocationTree::build({a}, catalog);
  const UslaEvaluator eval(tree.value(), catalog);
  for (std::int32_t free : {0, 1, 10, 50, 100}) {
    for (std::int32_t used : {0, 5, 40, 100}) {
      const std::int32_t headroom =
          eval.vo_headroom(snapshot(100, free, {{VoId(0), used}}), VoId(0));
      EXPECT_GE(headroom, 0);
      EXPECT_LE(headroom, free);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Bounds, EvaluatorProperty, ::testing::Values('t', '+', '-'));

}  // namespace
}  // namespace digruber::usla
