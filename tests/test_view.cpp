#include "digruber/gruber/view.hpp"

#include <gtest/gtest.h>

namespace digruber::gruber {
namespace {

grid::SiteSnapshot snapshot(std::uint64_t site, std::int32_t total,
                            std::int32_t free, double as_of_s = 0.0) {
  grid::SiteSnapshot s;
  s.site = SiteId(site);
  s.total_cpus = total;
  s.free_cpus = free;
  s.as_of = sim::Time::from_seconds(as_of_s);
  return s;
}

DispatchRecord record(std::uint64_t site, std::int32_t cpus, double when_s,
                      double runtime_s, std::uint64_t vo = 0,
                      std::uint64_t seq = 1) {
  DispatchRecord r;
  r.origin = DpId(0);
  r.seq = seq;
  r.site = SiteId(site);
  r.vo = VoId(vo);
  r.group = GroupId(vo);
  r.user = UserId(vo);
  r.cpus = cpus;
  r.when = sim::Time::from_seconds(when_s);
  r.est_runtime = sim::Duration::seconds(runtime_s);
  return r;
}

TEST(GridView, BootstrapInstallsBaseState) {
  GridView view;
  view.bootstrap({snapshot(0, 100, 80), snapshot(1, 50, 50)});
  EXPECT_EQ(view.site_count(), 2u);
  EXPECT_EQ(view.estimated_free(SiteId(0), sim::Time::zero()), 80);
  EXPECT_EQ(view.estimated_free(SiteId(1), sim::Time::zero()), 50);
  EXPECT_EQ(view.estimated_free(SiteId(9), sim::Time::zero()), 0);  // unknown
}

TEST(GridView, DispatchesReduceEstimate) {
  GridView view;
  view.bootstrap({snapshot(0, 100, 100)});
  view.record_dispatch(record(0, 10, /*when=*/10, /*runtime=*/100));
  view.record_dispatch(record(0, 5, 20, 100, 0, 2));
  EXPECT_EQ(view.estimated_free(SiteId(0), sim::Time::from_seconds(30)), 85);
  EXPECT_EQ(view.dispatches_recorded(), 2u);
}

TEST(GridView, RecordsAgeOutAfterEstimatedRuntime) {
  GridView view;
  view.bootstrap({snapshot(0, 100, 100)});
  view.record_dispatch(record(0, 10, 0, 60));
  EXPECT_EQ(view.estimated_free(SiteId(0), sim::Time::from_seconds(59)), 90);
  // At exactly when + est_runtime the job is assumed complete.
  EXPECT_EQ(view.estimated_free(SiteId(0), sim::Time::from_seconds(60)), 100);
}

TEST(GridView, EstimateNeverNegative) {
  GridView view;
  view.bootstrap({snapshot(0, 20, 10)});
  view.record_dispatch(record(0, 50, 0, 1000));
  EXPECT_EQ(view.estimated_free(SiteId(0), sim::Time::from_seconds(1)), 0);
}

TEST(GridView, FreshSnapshotAbsorbsOlderDispatches) {
  GridView view;
  view.bootstrap({snapshot(0, 100, 100, 0)});
  view.record_dispatch(record(0, 10, /*when=*/5, 1000));
  // Snapshot taken at t=20 already reflects that job.
  view.apply_snapshot(snapshot(0, 100, 90, 20));
  EXPECT_EQ(view.estimated_free(SiteId(0), sim::Time::from_seconds(25)), 90);
  // A dispatch after the snapshot still subtracts.
  view.record_dispatch(record(0, 7, 30, 1000, 0, 2));
  EXPECT_EQ(view.estimated_free(SiteId(0), sim::Time::from_seconds(35)), 83);
}

TEST(GridView, StaleSnapshotIgnored) {
  GridView view;
  view.apply_snapshot(snapshot(0, 100, 40, /*as_of=*/100));
  view.apply_snapshot(snapshot(0, 100, 99, /*as_of=*/50));  // older
  EXPECT_EQ(view.estimated_free(SiteId(0), sim::Time::from_seconds(100)), 40);
}

TEST(GridView, EstimatedSnapshotMergesVoUsage) {
  GridView view;
  grid::SiteSnapshot base = snapshot(0, 100, 80);
  base.running_per_vo[VoId(1)] = 20;
  view.apply_snapshot(base);
  view.record_dispatch(record(0, 5, 10, 1000, /*vo=*/1));
  view.record_dispatch(record(0, 3, 10, 1000, /*vo=*/2, 2));

  const grid::SiteSnapshot est =
      view.estimated_snapshot(SiteId(0), sim::Time::from_seconds(20));
  EXPECT_EQ(est.free_cpus, 72);
  EXPECT_EQ(est.running_per_vo.at(VoId(1)), 25);
  EXPECT_EQ(est.running_per_vo.at(VoId(2)), 3);
}

TEST(GridView, GroupAndUserActiveCounts) {
  GridView view;
  view.bootstrap({snapshot(0, 100, 100)});
  DispatchRecord r = record(0, 4, 0, 100);
  r.group = GroupId(7);
  r.user = UserId(9);
  view.record_dispatch(r);
  const auto t = sim::Time::from_seconds(10);
  EXPECT_EQ(view.active_for_group(SiteId(0), GroupId(7), t), 4);
  EXPECT_EQ(view.active_for_group(SiteId(0), GroupId(8), t), 0);
  EXPECT_EQ(view.active_for_user(SiteId(0), UserId(9), t), 4);
  EXPECT_EQ(view.active_for_user(SiteId(0), UserId(1), t), 0);
  // After aging, counts return to zero.
  const auto later = sim::Time::from_seconds(200);
  EXPECT_EQ(view.active_for_group(SiteId(0), GroupId(7), later), 0);
}

TEST(GridView, LoadsCoverAllSites) {
  GridView view;
  view.bootstrap({snapshot(0, 100, 60), snapshot(1, 40, 40)});
  view.record_dispatch(record(1, 10, 0, 500));
  const std::vector<SiteLoad> loads = view.loads(sim::Time::from_seconds(10));
  ASSERT_EQ(loads.size(), 2u);
  EXPECT_EQ(loads[0].site, SiteId(0));
  EXPECT_EQ(loads[0].free_estimate, 60);
  EXPECT_EQ(loads[0].raw_free, 60);
  EXPECT_EQ(loads[1].free_estimate, 30);
  EXPECT_EQ(loads[1].total_cpus, 40);
}

DispatchRecord origin_record(std::uint64_t origin, std::uint64_t seq,
                             std::uint64_t site, std::int32_t cpus,
                             double when_s, double runtime_s,
                             std::uint64_t vo = 0) {
  DispatchRecord r = record(site, cpus, when_s, runtime_s, vo, seq);
  r.origin = DpId(origin);
  return r;
}

// Window wide open for records dispatched around t=0..100 with long
// runtimes: everything below is settled and nowhere near expiry.
const sim::Time kAsOf = sim::Time::from_seconds(200);
const sim::Time kHorizon = sim::Time::from_seconds(210);

TEST(ViewDigest, OrderIndependentAndContentOnly) {
  const std::vector<DispatchRecord> records = {
      origin_record(0, 1, 0, 4, 10, 900, /*vo=*/1),
      origin_record(1, 1, 1, 2, 20, 900, /*vo=*/2),
      origin_record(1, 2, 0, 8, 30, 900, /*vo=*/1),
  };
  GridView a, b;
  a.bootstrap({snapshot(0, 100, 100), snapshot(1, 50, 50)});
  b.bootstrap({snapshot(0, 100, 100), snapshot(1, 50, 50)});
  for (const auto& r : records) a.record_dispatch(r);
  for (auto it = records.rbegin(); it != records.rend(); ++it) {
    b.record_dispatch(*it);
  }
  EXPECT_TRUE(a.digest(kAsOf, kHorizon) == b.digest(kAsOf, kHorizon));
  // The bounds are comparison parameters, not identity: a digest of the
  // same content over a different (but equally covering) window matches.
  EXPECT_TRUE(a.digest(kAsOf, kHorizon) ==
              b.digest(kAsOf + sim::Duration::seconds(50), kHorizon));
}

TEST(ViewDigest, SettledWindowExcludesFreshAndExpiringRecords) {
  GridView a, b;
  a.bootstrap({snapshot(0, 100, 100)});
  b.bootstrap({snapshot(0, 100, 100)});
  const DispatchRecord settled = origin_record(0, 1, 0, 4, 10, 3600);
  a.record_dispatch(settled);
  b.record_dispatch(settled);
  // Only a holds a record newer than as_of (still propagating through
  // normal exchange) and one expiring before the horizon (could age out
  // between sender compute and receiver compare): neither may show up as
  // divergence.
  a.record_dispatch(origin_record(0, 2, 0, 2, /*when=*/205, 3600));
  a.record_dispatch(origin_record(0, 3, 0, 2, /*when=*/20, /*runtime=*/185));
  EXPECT_TRUE(a.digest(kAsOf, kHorizon) == b.digest(kAsOf, kHorizon));
  // A settled, long-lived difference IS divergence.
  a.record_dispatch(origin_record(0, 4, 0, 2, 40, 3600));
  EXPECT_FALSE(a.digest(kAsOf, kHorizon) == b.digest(kAsOf, kHorizon));
}

TEST(ViewDigest, DivergedVosTargetsExactlyTheDifferingVos) {
  GridView a, b;
  a.bootstrap({snapshot(0, 100, 100)});
  b.bootstrap({snapshot(0, 100, 100)});
  const DispatchRecord shared = origin_record(0, 1, 0, 4, 10, 3600, /*vo=*/1);
  a.record_dispatch(shared);
  b.record_dispatch(shared);
  b.record_dispatch(origin_record(2, 7, 0, 2, 50, 3600, /*vo=*/3));
  const std::vector<VoId> vos =
      diverged_vos(a.digest(kAsOf, kHorizon), b.digest(kAsOf, kHorizon));
  ASSERT_EQ(vos.size(), 1u);
  EXPECT_EQ(vos[0], VoId(3));
  // The epoch vector pinpoints the origin whose tail is missing.
  const ViewDigest db = b.digest(kAsOf, kHorizon);
  ASSERT_EQ(db.epochs.size(), 2u);
  EXPECT_EQ(db.epochs[1].origin, DpId(2));
  EXPECT_EQ(db.epochs[1].max_seq, 7u);
}

TEST(ViewDigest, BaseStateDivergenceIsDetected) {
  GridView a, b;
  a.bootstrap({snapshot(0, 100, 100)});
  b.bootstrap({snapshot(0, 100, 90)});
  EXPECT_FALSE(a.digest(kAsOf, kHorizon) == b.digest(kAsOf, kHorizon));
  EXPECT_TRUE(diverged_vos(a.digest(kAsOf, kHorizon), b.digest(kAsOf, kHorizon))
                  .empty());
}

TEST(GridViewMerge, DuplicateIsDroppedConflictResolvedBySeverity) {
  const sim::Time now = sim::Time::from_seconds(100);
  GridView view;
  view.bootstrap({snapshot(0, 100, 100)});
  const DispatchRecord r = origin_record(0, 1, 0, 4, 10, 3600);
  ASSERT_TRUE(view.merge_record(r, now).applied);

  const auto dup = view.merge_record(r, now);
  EXPECT_FALSE(dup.applied);
  EXPECT_FALSE(dup.conflict);
  EXPECT_EQ(view.estimated_free(SiteId(0), now), 96);

  // An (origin, seq) twin claiming MORE cpus wins (severity-first: the
  // reconciled view never under-counts committed capacity)...
  DispatchRecord bigger = r;
  bigger.cpus = 9;
  const auto up = view.merge_record(bigger, now);
  EXPECT_TRUE(up.conflict);
  EXPECT_TRUE(up.applied);
  EXPECT_EQ(view.estimated_free(SiteId(0), now), 91);

  // ...and a smaller twin loses against the incumbent.
  DispatchRecord smaller = r;
  smaller.cpus = 1;
  const auto down = view.merge_record(smaller, now);
  EXPECT_TRUE(down.conflict);
  EXPECT_FALSE(down.applied);
  EXPECT_EQ(view.estimated_free(SiteId(0), now), 91);
}

TEST(GridViewMerge, DoubleCommitFlaggedAndBothSidesKept) {
  // The split-brain signature: two origins independently admitted the
  // same logical work (vo, group, user, when). Both allocations really
  // consumed capacity, so both stay — but the merge surfaces it.
  const sim::Time now = sim::Time::from_seconds(100);
  GridView view;
  view.bootstrap({snapshot(0, 100, 100)});
  const DispatchRecord from_a = origin_record(0, 1, 0, 4, 10, 3600, /*vo=*/2);
  DispatchRecord from_b = origin_record(1, 1, 0, 4, 10, 3600, /*vo=*/2);
  ASSERT_TRUE(view.merge_record(from_a, now).applied);
  const auto merged = view.merge_record(from_b, now);
  EXPECT_TRUE(merged.applied);
  EXPECT_TRUE(merged.double_commit);
  EXPECT_EQ(view.estimated_free(SiteId(0), now), 92);
}

TEST(GridViewMerge, ConvergesToSameDigestRegardlessOfMergeOrder) {
  const sim::Time now = sim::Time::from_seconds(100);
  std::vector<DispatchRecord> records = {
      origin_record(0, 1, 0, 4, 10, 3600, 1),
      origin_record(1, 1, 0, 6, 20, 3600, 2),
      origin_record(1, 2, 1, 2, 30, 3600, 1),
      origin_record(2, 5, 1, 3, 40, 3600, 3),
  };
  // A conflicting twin of records[1] with higher severity, mixed in at
  // different positions on each side.
  DispatchRecord twin = records[1];
  twin.cpus = 8;

  GridView a, b;
  a.bootstrap({snapshot(0, 100, 100), snapshot(1, 50, 50)});
  b.bootstrap({snapshot(0, 100, 100), snapshot(1, 50, 50)});
  for (const auto& r : records) a.merge_record(r, now);
  a.merge_record(twin, now);
  b.merge_record(twin, now);
  for (auto it = records.rbegin(); it != records.rend(); ++it) {
    b.merge_record(*it, now);
  }
  EXPECT_TRUE(a.digest(kAsOf, kHorizon) == b.digest(kAsOf, kHorizon));
  EXPECT_EQ(a.estimated_free(SiteId(0), now), b.estimated_free(SiteId(0), now));
  EXPECT_EQ(a.estimated_free(SiteId(1), now), b.estimated_free(SiteId(1), now));
}

}  // namespace
}  // namespace digruber::gruber
