#include "digruber/gruber/view.hpp"

#include <gtest/gtest.h>

namespace digruber::gruber {
namespace {

grid::SiteSnapshot snapshot(std::uint64_t site, std::int32_t total,
                            std::int32_t free, double as_of_s = 0.0) {
  grid::SiteSnapshot s;
  s.site = SiteId(site);
  s.total_cpus = total;
  s.free_cpus = free;
  s.as_of = sim::Time::from_seconds(as_of_s);
  return s;
}

DispatchRecord record(std::uint64_t site, std::int32_t cpus, double when_s,
                      double runtime_s, std::uint64_t vo = 0,
                      std::uint64_t seq = 1) {
  DispatchRecord r;
  r.origin = DpId(0);
  r.seq = seq;
  r.site = SiteId(site);
  r.vo = VoId(vo);
  r.group = GroupId(vo);
  r.user = UserId(vo);
  r.cpus = cpus;
  r.when = sim::Time::from_seconds(when_s);
  r.est_runtime = sim::Duration::seconds(runtime_s);
  return r;
}

TEST(GridView, BootstrapInstallsBaseState) {
  GridView view;
  view.bootstrap({snapshot(0, 100, 80), snapshot(1, 50, 50)});
  EXPECT_EQ(view.site_count(), 2u);
  EXPECT_EQ(view.estimated_free(SiteId(0), sim::Time::zero()), 80);
  EXPECT_EQ(view.estimated_free(SiteId(1), sim::Time::zero()), 50);
  EXPECT_EQ(view.estimated_free(SiteId(9), sim::Time::zero()), 0);  // unknown
}

TEST(GridView, DispatchesReduceEstimate) {
  GridView view;
  view.bootstrap({snapshot(0, 100, 100)});
  view.record_dispatch(record(0, 10, /*when=*/10, /*runtime=*/100));
  view.record_dispatch(record(0, 5, 20, 100, 0, 2));
  EXPECT_EQ(view.estimated_free(SiteId(0), sim::Time::from_seconds(30)), 85);
  EXPECT_EQ(view.dispatches_recorded(), 2u);
}

TEST(GridView, RecordsAgeOutAfterEstimatedRuntime) {
  GridView view;
  view.bootstrap({snapshot(0, 100, 100)});
  view.record_dispatch(record(0, 10, 0, 60));
  EXPECT_EQ(view.estimated_free(SiteId(0), sim::Time::from_seconds(59)), 90);
  // At exactly when + est_runtime the job is assumed complete.
  EXPECT_EQ(view.estimated_free(SiteId(0), sim::Time::from_seconds(60)), 100);
}

TEST(GridView, EstimateNeverNegative) {
  GridView view;
  view.bootstrap({snapshot(0, 20, 10)});
  view.record_dispatch(record(0, 50, 0, 1000));
  EXPECT_EQ(view.estimated_free(SiteId(0), sim::Time::from_seconds(1)), 0);
}

TEST(GridView, FreshSnapshotAbsorbsOlderDispatches) {
  GridView view;
  view.bootstrap({snapshot(0, 100, 100, 0)});
  view.record_dispatch(record(0, 10, /*when=*/5, 1000));
  // Snapshot taken at t=20 already reflects that job.
  view.apply_snapshot(snapshot(0, 100, 90, 20));
  EXPECT_EQ(view.estimated_free(SiteId(0), sim::Time::from_seconds(25)), 90);
  // A dispatch after the snapshot still subtracts.
  view.record_dispatch(record(0, 7, 30, 1000, 0, 2));
  EXPECT_EQ(view.estimated_free(SiteId(0), sim::Time::from_seconds(35)), 83);
}

TEST(GridView, StaleSnapshotIgnored) {
  GridView view;
  view.apply_snapshot(snapshot(0, 100, 40, /*as_of=*/100));
  view.apply_snapshot(snapshot(0, 100, 99, /*as_of=*/50));  // older
  EXPECT_EQ(view.estimated_free(SiteId(0), sim::Time::from_seconds(100)), 40);
}

TEST(GridView, EstimatedSnapshotMergesVoUsage) {
  GridView view;
  grid::SiteSnapshot base = snapshot(0, 100, 80);
  base.running_per_vo[VoId(1)] = 20;
  view.apply_snapshot(base);
  view.record_dispatch(record(0, 5, 10, 1000, /*vo=*/1));
  view.record_dispatch(record(0, 3, 10, 1000, /*vo=*/2, 2));

  const grid::SiteSnapshot est =
      view.estimated_snapshot(SiteId(0), sim::Time::from_seconds(20));
  EXPECT_EQ(est.free_cpus, 72);
  EXPECT_EQ(est.running_per_vo.at(VoId(1)), 25);
  EXPECT_EQ(est.running_per_vo.at(VoId(2)), 3);
}

TEST(GridView, GroupAndUserActiveCounts) {
  GridView view;
  view.bootstrap({snapshot(0, 100, 100)});
  DispatchRecord r = record(0, 4, 0, 100);
  r.group = GroupId(7);
  r.user = UserId(9);
  view.record_dispatch(r);
  const auto t = sim::Time::from_seconds(10);
  EXPECT_EQ(view.active_for_group(SiteId(0), GroupId(7), t), 4);
  EXPECT_EQ(view.active_for_group(SiteId(0), GroupId(8), t), 0);
  EXPECT_EQ(view.active_for_user(SiteId(0), UserId(9), t), 4);
  EXPECT_EQ(view.active_for_user(SiteId(0), UserId(1), t), 0);
  // After aging, counts return to zero.
  const auto later = sim::Time::from_seconds(200);
  EXPECT_EQ(view.active_for_group(SiteId(0), GroupId(7), later), 0);
}

TEST(GridView, LoadsCoverAllSites) {
  GridView view;
  view.bootstrap({snapshot(0, 100, 60), snapshot(1, 40, 40)});
  view.record_dispatch(record(1, 10, 0, 500));
  const std::vector<SiteLoad> loads = view.loads(sim::Time::from_seconds(10));
  ASSERT_EQ(loads.size(), 2u);
  EXPECT_EQ(loads[0].site, SiteId(0));
  EXPECT_EQ(loads[0].free_estimate, 60);
  EXPECT_EQ(loads[0].raw_free, 60);
  EXPECT_EQ(loads[1].free_estimate, 30);
  EXPECT_EQ(loads[1].total_cpus, 40);
}

}  // namespace
}  // namespace digruber::gruber
