#include "digruber/net/wan.hpp"

#include <gtest/gtest.h>

namespace digruber::net {
namespace {

TEST(Wan, BaseLatencyWithinConfiguredBounds) {
  WanParams params;
  params.min_latency_ms = 10;
  params.max_latency_ms = 100;
  WanModel wan(params, 1);
  for (std::uint64_t a = 1; a < 30; ++a) {
    for (std::uint64_t b = a + 1; b < 30; ++b) {
      const double ms = wan.base_latency(NodeId(a), NodeId(b)).to_seconds() * 1e3;
      EXPECT_GE(ms, 10.0 - 1e-9);
      EXPECT_LE(ms, 100.0 + 1e-9);
    }
  }
}

TEST(Wan, BaseLatencyIsSymmetricAndStable) {
  WanModel wan(WanParams{}, 2);
  const auto ab = wan.base_latency(NodeId(3), NodeId(9));
  const auto ba = wan.base_latency(NodeId(9), NodeId(3));
  EXPECT_EQ(ab, ba);
  EXPECT_EQ(ab, wan.base_latency(NodeId(3), NodeId(9)));  // deterministic
}

TEST(Wan, LoopbackIsFast) {
  WanModel wan(WanParams{}, 3);
  EXPECT_LT(wan.base_latency(NodeId(5), NodeId(5)).to_seconds(), 0.001);
}

TEST(Wan, TransmissionDelayScalesWithSize) {
  WanParams params;
  params.jitter_cv = 0.0;  // deterministic
  params.bandwidth_bps = 8e6;
  params.envelope_factor = 1.0;
  WanModel wan(params, 4);
  const double small = wan.delay(NodeId(1), NodeId(2), 1000).to_seconds();
  const double big = wan.delay(NodeId(1), NodeId(2), 1001000).to_seconds();
  // Extra 1 MB at 8 Mb/s = 1 s.
  EXPECT_NEAR(big - small, 1.0, 5e-6);  // integer-microsecond quantization
}

TEST(Wan, EnvelopeFactorInflatesWireBytes) {
  WanParams plain;
  plain.jitter_cv = 0.0;
  plain.envelope_factor = 1.0;
  WanParams soap = plain;
  soap.envelope_factor = 4.0;
  WanModel a(plain, 5), b(soap, 5);
  const double d1 = a.delay(NodeId(1), NodeId(2), 100000).to_seconds();
  const double d4 = b.delay(NodeId(1), NodeId(2), 100000).to_seconds();
  EXPECT_GT(d4, d1);
  const double base = a.base_latency(NodeId(1), NodeId(2)).to_seconds();
  EXPECT_NEAR((d4 - base) / (d1 - base), 4.0, 1e-6);
}

TEST(Wan, JitterVariesDelay) {
  WanParams params;
  params.jitter_cv = 0.3;
  WanModel wan(params, 6);
  const double d1 = wan.delay(NodeId(1), NodeId(2), 100).to_seconds();
  double different = 0;
  for (int i = 0; i < 10; ++i) {
    if (wan.delay(NodeId(1), NodeId(2), 100).to_seconds() != d1) ++different;
  }
  EXPECT_GT(different, 0);
}

TEST(Wan, LossRate) {
  WanParams lossy;
  lossy.loss_rate = 0.5;
  WanModel wan(lossy, 7);
  int drops = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) drops += wan.drop() ? 1 : 0;
  EXPECT_NEAR(double(drops) / n, 0.5, 0.03);

  WanModel reliable(WanParams{}, 8);
  for (int i = 0; i < 1000; ++i) ASSERT_FALSE(reliable.drop());
}

TEST(Wan, LinkOverrideScalesLatencyOnlyForThatPair) {
  WanModel wan(WanParams{}, 9);
  const sim::Duration base12 = wan.base_latency(NodeId(1), NodeId(2));
  const sim::Duration base13 = wan.base_latency(NodeId(1), NodeId(3));

  LinkOverride slow;
  slow.latency_factor = 3.0;
  wan.set_link_override(NodeId(1), NodeId(2), slow);
  EXPECT_EQ(wan.link_overrides(), 1u);
  EXPECT_NEAR(wan.base_latency(NodeId(1), NodeId(2)).to_seconds(),
              3.0 * base12.to_seconds(), 1e-6);
  // The override keys the unordered pair, so both directions degrade.
  EXPECT_EQ(wan.base_latency(NodeId(2), NodeId(1)),
            wan.base_latency(NodeId(1), NodeId(2)));
  EXPECT_EQ(wan.base_latency(NodeId(1), NodeId(3)), base13);

  wan.clear_link_override(NodeId(1), NodeId(2));
  EXPECT_EQ(wan.link_overrides(), 0u);
  EXPECT_EQ(wan.base_latency(NodeId(1), NodeId(2)), base12);
}

TEST(Wan, LinkOverrideAddsLossOnTopOfGlobalRate) {
  WanModel wan(WanParams{}, 10);  // global loss rate 0
  LinkOverride dead;
  dead.extra_loss = 1.0;
  wan.set_link_override(NodeId(1), NodeId(2), dead);
  for (int i = 0; i < 200; ++i) ASSERT_TRUE(wan.drop(NodeId(1), NodeId(2)));
  for (int i = 0; i < 200; ++i) ASSERT_FALSE(wan.drop(NodeId(1), NodeId(3)));

  LinkOverride partial;  // setting again replaces the previous override
  partial.extra_loss = 0.5;
  wan.set_link_override(NodeId(1), NodeId(2), partial);
  int drops = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) drops += wan.drop(NodeId(2), NodeId(1)) ? 1 : 0;
  EXPECT_NEAR(double(drops) / n, 0.5, 0.03);

  wan.clear_link_overrides();
  for (int i = 0; i < 200; ++i) ASSERT_FALSE(wan.drop(NodeId(1), NodeId(2)));
}

}  // namespace
}  // namespace digruber::net
