#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "digruber/common/rng.hpp"
#include "digruber/digruber/protocol.hpp"
#include "digruber/net/wire/archive.hpp"
#include "digruber/net/wire/frame.hpp"

namespace digruber::net::wire {
namespace {

using ::digruber::digruber::ExchangeMessage;
using ::digruber::digruber::GetSiteLoadsReply;
using ::digruber::digruber::GetSiteLoadsRequest;
using ::digruber::digruber::ReportSelectionRequest;
using ::digruber::digruber::SaturationSignal;

// Serializable fixtures (namespace scope: local classes cannot declare the
// member template serialize()).
struct Ints {
  std::int8_t a = -5;
  std::uint16_t b = 65535;
  std::int32_t c = -123456;
  std::uint64_t d = ~0ULL;
  template <class A>
  void serialize(A& ar) { ar & a & b & c & d; }
};

struct Floats {
  double x = 3.14159265358979;
  float y = -1.5f;
  bool t = true, f = false;
  template <class A>
  void serialize(A& ar) { ar & x & y & t & f; }
};

struct Mixed {
  std::string name = "hello world";
  std::vector<std::uint32_t> nums{1, 2, 3};
  std::map<std::string, std::int32_t> table{{"a", 1}, {"b", -2}};
  std::optional<std::string> some = "x";
  std::optional<std::string> none;
  std::pair<std::uint8_t, std::string> p{7, "pair"};
  template <class A>
  void serialize(A& ar) { ar & name & nums & table & some & none & p; }
};

struct Empties {
  std::vector<int> v;
  std::string s;
  std::map<int, int> m;
  template <class A>
  void serialize(A& ar) { ar & v & s & m; }
};

template <class T>
T roundtrip(const T& value) {
  T out{};
  const std::vector<std::uint8_t> bytes = encode(value);
  EXPECT_TRUE(decode(std::span<const std::uint8_t>(bytes), out));
  return out;
}

TEST(Wire, Integers) {
  Ints v;
  const Ints w = roundtrip(v);
  EXPECT_EQ(w.a, v.a);
  EXPECT_EQ(w.b, v.b);
  EXPECT_EQ(w.c, v.c);
  EXPECT_EQ(w.d, v.d);
}

TEST(Wire, FloatsBools) {
  Floats v;
  const Floats w = roundtrip(v);
  EXPECT_DOUBLE_EQ(w.x, v.x);
  EXPECT_FLOAT_EQ(w.y, v.y);
  EXPECT_TRUE(w.t);
  EXPECT_FALSE(w.f);
}

TEST(Wire, StringsAndContainers) {
  Mixed v;
  const Mixed w = roundtrip(v);
  EXPECT_EQ(w.name, v.name);
  EXPECT_EQ(w.nums, v.nums);
  EXPECT_EQ(w.table, v.table);
  EXPECT_EQ(w.some, v.some);
  EXPECT_FALSE(w.none.has_value());
  EXPECT_EQ(w.p, v.p);
}

TEST(Wire, EmptyContainers) {
  Empties in;
  const Empties out = roundtrip(in);
  EXPECT_TRUE(out.v.empty());
  EXPECT_TRUE(out.s.empty());
  EXPECT_TRUE(out.m.empty());
}

TEST(Wire, TruncatedBufferFailsCleanly) {
  GetSiteLoadsRequest request;
  request.vo = VoId(3);
  std::vector<std::uint8_t> bytes = encode(request);
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    GetSiteLoadsRequest out;
    EXPECT_FALSE(decode(std::span<const std::uint8_t>(bytes.data(), cut), out))
        << "cut at " << cut;
  }
}

TEST(Wire, TrailingGarbageRejected) {
  GetSiteLoadsRequest request;
  std::vector<std::uint8_t> bytes = encode(request);
  bytes.push_back(0xAB);
  GetSiteLoadsRequest out;
  EXPECT_FALSE(decode(std::span<const std::uint8_t>(bytes), out));
}

TEST(Wire, HostileLengthPrefixRejected) {
  // A vector claiming 2^31 elements in a 16-byte buffer must not allocate.
  Writer w;
  w & std::uint32_t{0x7fffffff};
  std::vector<std::uint8_t> bytes = w.take();
  bytes.resize(16, 0);
  Reader r{std::span<const std::uint8_t>(bytes)};
  std::vector<std::uint64_t> out;
  r & out;
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(out.empty());
}

TEST(Wire, ProtocolStructsRoundtrip) {
  GetSiteLoadsRequest q;
  q.job = JobId(9);
  q.vo = VoId(2);
  q.group = GroupId(5);
  q.user = UserId(8);
  q.cpus = 4;
  const auto q2 = roundtrip(q);
  EXPECT_EQ(q2.job, q.job);
  EXPECT_EQ(q2.cpus, 4);

  GetSiteLoadsReply reply;
  for (int i = 0; i < 50; ++i) {
    gruber::SiteLoad load;
    load.site = SiteId(std::uint64_t(i));
    load.total_cpus = 100 + i;
    load.free_estimate = i;
    load.raw_free = i * 2;
    load.queued = 1;
    reply.candidates.push_back(load);
  }
  reply.as_of = sim::Time::from_seconds(12.5);
  const auto r2 = roundtrip(reply);
  ASSERT_EQ(r2.candidates.size(), 50u);
  EXPECT_EQ(r2.candidates[10].raw_free, 20);
  EXPECT_EQ(r2.as_of, reply.as_of);

  ExchangeMessage ex;
  ex.from = DpId(1);
  ex.exchange_round = 4;
  gruber::DispatchRecord record;
  record.origin = DpId(1);
  record.seq = 77;
  record.site = SiteId(3);
  record.vo = VoId(0);
  record.cpus = 2;
  record.when = sim::Time::from_seconds(100);
  record.est_runtime = sim::Duration::seconds(300);
  ex.dispatches.push_back(record);
  const auto ex2 = roundtrip(ex);
  ASSERT_EQ(ex2.dispatches.size(), 1u);
  EXPECT_EQ(ex2.dispatches[0].seq, 77u);
  EXPECT_EQ(ex2.dispatches[0].est_runtime, record.est_runtime);

  SaturationSignal sig;
  sig.from = DpId(2);
  sig.avg_response_s = 31.5;
  sig.queue_depth = 17;
  const auto sig2 = roundtrip(sig);
  EXPECT_DOUBLE_EQ(sig2.avg_response_s, 31.5);
  EXPECT_EQ(sig2.queue_depth, 17);
}

TEST(Frame, RoundtripAndParse) {
  ReportSelectionRequest body;
  body.site = SiteId(42);
  body.cpus = 2;
  const net::Buffer frame = make_frame(2, FrameKind::kRequest, 12345, body);

  FrameHeader header;
  std::span<const std::uint8_t> payload;
  ASSERT_TRUE(parse_frame(frame, header, payload));
  EXPECT_EQ(header.method, 2);
  EXPECT_EQ(header.correlation, 12345u);
  EXPECT_EQ(static_cast<FrameKind>(header.kind), FrameKind::kRequest);

  ReportSelectionRequest out;
  ASSERT_TRUE(decode(payload, out));
  EXPECT_EQ(out.site, SiteId(42));
}

TEST(Frame, RejectsCorruptHeader) {
  std::vector<std::uint8_t> junk(frame_header_size() - 1, 0);
  FrameHeader header;
  std::span<const std::uint8_t> body;
  EXPECT_FALSE(parse_frame(junk, header, body));

  const std::vector<std::uint8_t> frame =
      make_frame(1, FrameKind::kReply, 1, std::string("x")).to_vector();
  std::vector<std::uint8_t> wrong_version = frame;
  wrong_version[0] = 0xFF;  // clobber version
  EXPECT_FALSE(parse_frame(wrong_version, header, body));

  std::vector<std::uint8_t> short_body = frame;
  short_body.pop_back();
  EXPECT_FALSE(parse_frame(short_body, header, body));
}

TEST(Frame, BodySizeMismatchIsDistinctCause) {
  const net::Buffer frame =
      make_frame(1, FrameKind::kRequest, 7, std::string("abc"));
  FrameHeader header;
  std::span<const std::uint8_t> body;
  EXPECT_EQ(parse_frame_ex(frame, header, body), FrameParse::kOk);

  // Chop body bytes: the header still parses but its declared body_size
  // no longer matches what is present.
  std::vector<std::uint8_t> truncated = frame.to_vector();
  truncated.pop_back();
  EXPECT_EQ(parse_frame_ex(truncated, header, body),
            FrameParse::kBodySizeMismatch);

  std::vector<std::uint8_t> padded = frame.to_vector();
  padded.push_back(0);
  EXPECT_EQ(parse_frame_ex(padded, header, body),
            FrameParse::kBodySizeMismatch);

  // Too short for even a header is the other cause.
  std::vector<std::uint8_t> stub(frame_header_size() - 1, 0);
  EXPECT_EQ(parse_frame_ex(std::span<const std::uint8_t>(stub), header, body),
            FrameParse::kBadHeader);
}

TEST(Buffer, SliceSharesStorageWithoutCopy) {
  net::Buffer buffer = net::Buffer({10, 20, 30, 40, 50});
  EXPECT_EQ(buffer.owners(), 1);

  const std::uint64_t allocs_before = net::Buffer::allocations();
  net::Buffer mid = buffer.slice(1, 3);
  EXPECT_EQ(net::Buffer::allocations(), allocs_before);  // no new storage
  EXPECT_EQ(buffer.owners(), 2);
  EXPECT_EQ(mid.size(), 3u);
  EXPECT_EQ(mid.data(), buffer.data() + 1);
  EXPECT_EQ(mid, net::Buffer({20, 30, 40}));

  // Clamped, never out of bounds.
  EXPECT_EQ(buffer.slice(4, 100).size(), 1u);
  EXPECT_EQ(buffer.slice(99, 1).size(), 0u);

  // The slice keeps the storage alive after the original goes away.
  buffer = net::Buffer();
  EXPECT_EQ(mid.owners(), 1);
  EXPECT_EQ(mid, net::Buffer({20, 30, 40}));
}

TEST(Buffer, ParsedBodyOutlivesFrame) {
  net::Buffer frame = make_frame(1, FrameKind::kReply, 3, std::string("hello"));
  FrameHeader header;
  net::Buffer body;
  ASSERT_TRUE(parse_frame(frame, header, body));
  EXPECT_EQ(frame.owners(), 2);  // body is a view into the same storage

  frame = net::Buffer();  // drop the frame: body must stay valid
  std::string out;
  ASSERT_TRUE(decode(body, out));
  EXPECT_EQ(out, "hello");
}

TEST(Buffer, FrameIsSingleAllocation) {
  GetSiteLoadsReply reply;
  for (int i = 0; i < 300; ++i) {
    gruber::SiteLoad load;
    load.site = SiteId(std::uint64_t(i));
    reply.candidates.push_back(load);
  }
  // Warm up any lazy statics (frame_header_size caches a Sizer pass).
  (void)frame_header_size();
  const std::uint64_t before = net::Buffer::allocations();
  const net::Buffer frame = make_frame(1, FrameKind::kReply, 1, reply);
  EXPECT_EQ(net::Buffer::allocations(), before + 1);
  EXPECT_EQ(frame.size(),
            frame_header_size() + encoded_size(reply));
}

/// Property sweep: random SiteLoad vectors of many sizes roundtrip
/// bit-exactly.
class WireProperty : public ::testing::TestWithParam<int> {};

TEST_P(WireProperty, RandomLoadVectorsRoundtrip) {
  Rng rng(std::uint64_t(GetParam()) * 7919);
  GetSiteLoadsReply reply;
  const int n = GetParam();
  for (int i = 0; i < n; ++i) {
    gruber::SiteLoad load;
    load.site = SiteId(rng());
    load.total_cpus = std::int32_t(rng.uniform_index(100000));
    load.free_estimate = std::int32_t(rng.uniform_index(100000));
    load.raw_free = std::int32_t(rng.uniform_index(100000));
    load.queued = std::int32_t(rng.uniform_index(1000));
    reply.candidates.push_back(load);
  }
  const std::vector<std::uint8_t> bytes = encode(reply);
  GetSiteLoadsReply out;
  ASSERT_TRUE(decode(std::span<const std::uint8_t>(bytes), out));
  ASSERT_EQ(out.candidates.size(), reply.candidates.size());
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(out.candidates[std::size_t(i)].site, reply.candidates[std::size_t(i)].site);
    EXPECT_EQ(out.candidates[std::size_t(i)].raw_free,
              reply.candidates[std::size_t(i)].raw_free);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, WireProperty,
                         ::testing::Values(0, 1, 2, 17, 300, 1000));

}  // namespace
}  // namespace digruber::net::wire
