// Fuzz-style robustness sweep over the wire layer. The Reader's contract
// (archive.hpp) is that hostile input never throws, never reads out of
// bounds, and failed reads yield zero values — these tests drive that
// contract with deterministic Rng-generated corruption over every protocol
// message the broker ships: truncation at every prefix, random bit flips,
// hostile length prefixes, and outright garbage. Run under the asan-ubsan
// preset this doubles as an out-of-bounds-read detector.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "digruber/common/rng.hpp"
#include "digruber/digruber/protocol.hpp"
#include "digruber/durable/wal.hpp"
#include "digruber/net/wire/frame.hpp"

namespace digruber::net {
namespace {

namespace proto = ::digruber::digruber;

// One valid frame plus a type-erased decoder for its body, so the sweeps
// below can corrupt any message without knowing its static type.
struct CorpusEntry {
  std::string name;
  Buffer frame;
  std::function<bool(std::span<const std::uint8_t>)> decode_body;
};

template <class T>
CorpusEntry entry(std::string name, std::uint16_t method, wire::FrameKind kind,
                  const T& msg, std::int64_t deadline_us = 0,
                  bool checksum = false) {
  return {std::move(name),
          wire::make_frame(method, kind, 77, msg, deadline_us, checksum),
          [](std::span<const std::uint8_t> body) {
            T out;
            return wire::decode(body, out);
          }};
}

proto::GetSiteLoadsReply make_loads_reply(bool with_hints) {
  proto::GetSiteLoadsReply reply;
  for (std::uint64_t i = 0; i < 5; ++i) {
    gruber::SiteLoad load;
    load.site = SiteId(i);
    load.total_cpus = 64;
    load.free_estimate = std::int32_t(i * 3);
    load.raw_free = load.free_estimate;
    load.queued = 2;
    reply.candidates.push_back(load);
  }
  reply.as_of = sim::Time::from_seconds(12.5);
  if (with_hints) {
    proto::DpLoadHint hint;
    hint.node = 9;
    hint.queue_depth = 4;
    hint.utilization = 0.7;
    hint.est_wait_s = 1.25;
    reply.dp_loads.push_back(hint);
  }
  return reply;
}

// Price-bearing reply: the dp_prices trailer stacks after membership,
// digest, and degraded, so attaching it forces all three (defaults are
// no-ops on receivers — the same rule the DP attach path follows).
proto::GetSiteLoadsReply make_priced_reply() {
  proto::GetSiteLoadsReply reply = make_loads_reply(true);
  reply.has_membership = true;
  reply.has_digest = true;
  reply.has_degraded = true;
  reply.dp_prices = {3.25};  // aligned index-wise with dp_loads
  return reply;
}

proto::ExchangeMessage make_exchange(bool with_hint) {
  proto::ExchangeMessage msg;
  msg.from = DpId(3);
  msg.exchange_round = 41;
  for (std::uint64_t i = 0; i < 4; ++i) {
    gruber::DispatchRecord r;
    r.origin = DpId(i % 2);
    r.seq = i;
    r.site = SiteId(i);
    r.vo = VoId(1);
    r.group = GroupId(2);
    r.user = UserId(3);
    r.cpus = 1;
    r.when = sim::Time::from_seconds(double(i));
    r.est_runtime = sim::Duration::seconds(450);
    msg.dispatches.push_back(r);
  }
  grid::SiteSnapshot snap;
  snap.site = SiteId(1);
  snap.total_cpus = 128;
  snap.free_cpus = 32;
  snap.queued_jobs = 5;
  snap.running_per_vo[VoId(1)] = 7;
  snap.total_storage_bytes = 1 << 20;
  snap.free_storage_bytes = 1 << 18;
  snap.storage_per_vo[VoId(1)] = 1 << 16;
  snap.as_of = sim::Time::from_seconds(40.0);
  msg.snapshots.push_back(snap);
  if (with_hint) {
    msg.has_load = true;
    msg.load.node = 12;
    msg.load.queue_depth = 9;
    msg.load.utilization = 0.4;
    msg.load.est_wait_s = 0.2;
  }
  return msg;
}

// Price-flooding exchange: the price trailer stacks fourth, forcing
// load, membership, and an empty digest ("no digest", not divergence).
proto::ExchangeMessage make_priced_exchange() {
  proto::ExchangeMessage msg = make_exchange(true);
  msg.has_membership = true;
  msg.has_digest = true;
  msg.has_price = true;
  msg.price = 5.75;
  return msg;
}

// Sparse-overlay exchange: the hop trailer stacks fifth (batch-max depth
// plus per-record depths), forcing the four trailers before it.
proto::ExchangeMessage make_hopped_exchange() {
  proto::ExchangeMessage msg = make_exchange(true);
  msg.has_membership = true;
  msg.has_digest = true;
  msg.has_price = true;
  msg.price = 5.75;
  msg.has_hops = true;
  msg.hops = 3;
  msg.hop_depths = {0, 1, 3, 2};  // one depth per dispatch record
  return msg;
}

// Every message the protocol can put on the wire, including the optional
// trailing-field variants, the v2 deadline frame, and the OverloadNack.
std::vector<CorpusEntry> corpus() {
  using wire::FrameKind;
  using proto::Method;
  std::vector<CorpusEntry> out;

  proto::GetSiteLoadsRequest loads_req;
  loads_req.job = JobId(100);
  loads_req.vo = VoId(1);
  loads_req.group = GroupId(2);
  loads_req.user = UserId(3);
  loads_req.cpus = 4;
  out.push_back(entry("GetSiteLoadsRequest", Method::kGetSiteLoads,
                      FrameKind::kRequest, loads_req));
  out.push_back(entry("GetSiteLoadsRequest.v2deadline", Method::kGetSiteLoads,
                      FrameKind::kRequest, loads_req, 123'456'789));
  out.push_back(entry("GetSiteLoadsReply", Method::kGetSiteLoads,
                      FrameKind::kReply, make_loads_reply(false)));
  out.push_back(entry("GetSiteLoadsReply.hints", Method::kGetSiteLoads,
                      FrameKind::kReply, make_loads_reply(true)));
  out.push_back(entry("GetSiteLoadsReply.prices", Method::kGetSiteLoads,
                      FrameKind::kReply, make_priced_reply()));

  proto::GetSiteLoadsRequest bid_req = loads_req;
  bid_req.has_epoch = true;  // the bid trailer stacks after the epoch
  bid_req.has_bid = true;
  bid_req.budget = 42.5;
  bid_req.deadline_s = 1800.0;
  out.push_back(entry("GetSiteLoadsRequest.bid", Method::kGetSiteLoads,
                      FrameKind::kRequest, bid_req));

  proto::ReportSelectionRequest sel;
  sel.job = JobId(100);
  sel.site = SiteId(7);
  sel.vo = VoId(1);
  sel.group = GroupId(2);
  sel.user = UserId(3);
  sel.cpus = 4;
  sel.est_runtime = sim::Duration::seconds(900);
  out.push_back(entry("ReportSelectionRequest", Method::kReportSelection,
                      FrameKind::kRequest, sel));
  out.push_back(entry("ReportSelectionRequest.v2deadline",
                      Method::kReportSelection, FrameKind::kRequest, sel,
                      10'000'000));
  proto::ReportSelectionRequest priced_sel = sel;
  priced_sel.has_bid = true;
  priced_sel.budget = 42.5;
  priced_sel.deadline_s = 1800.0;
  out.push_back(entry("ReportSelectionRequest.bid", Method::kReportSelection,
                      FrameKind::kRequest, priced_sel));
  proto::ReportSelectionRequest rid_sel = sel;
  rid_sel.has_request_id = true;  // stacks after the (forced) bid bytes
  rid_sel.request_client = 31;
  rid_sel.request_seq = 7;
  out.push_back(entry("ReportSelectionRequest.rid", Method::kReportSelection,
                      FrameKind::kRequest, rid_sel));
  out.push_back(
      entry("Ack", Method::kReportSelection, FrameKind::kReply, proto::Ack{}));
  proto::Ack dedup_ack;
  dedup_ack.has_original = true;
  dedup_ack.original_site = SiteId(7);
  out.push_back(entry("Ack.original", Method::kReportSelection,
                      FrameKind::kReply, dedup_ack));

  out.push_back(entry("ExchangeMessage", Method::kExchange, FrameKind::kOneWay,
                      make_exchange(false)));
  out.push_back(entry("ExchangeMessage.hint", Method::kExchange,
                      FrameKind::kOneWay, make_exchange(true)));
  out.push_back(entry("ExchangeMessage.price", Method::kExchange,
                      FrameKind::kOneWay, make_priced_exchange()));
  out.push_back(entry("ExchangeMessage.hops", Method::kExchange,
                      FrameKind::kOneWay, make_hopped_exchange()));
  out.push_back(entry("ExchangeMessage.hops.v3checksum", Method::kExchange,
                      FrameKind::kOneWay, make_hopped_exchange(),
                      /*deadline_us=*/0, /*checksum=*/true));
  out.push_back(entry("ExchangeMessage.v3checksum", Method::kExchange,
                      FrameKind::kOneWay, make_exchange(true),
                      /*deadline_us=*/0, /*checksum=*/true));
  out.push_back(entry("ExchangeMessage.price.v3checksum", Method::kExchange,
                      FrameKind::kOneWay, make_priced_exchange(),
                      /*deadline_us=*/0, /*checksum=*/true));
  out.push_back(entry("GetSiteLoadsReply.v3checksum", Method::kGetSiteLoads,
                      FrameKind::kReply, make_loads_reply(true),
                      /*deadline_us=*/0, /*checksum=*/true));

  proto::CreateInstanceRequest create;
  create.nonce = 0xdeadbeef;
  create.payload = std::string(256, 'x');
  out.push_back(entry("CreateInstanceRequest", Method::kCreateInstance,
                      FrameKind::kRequest, create));
  proto::CreateInstanceReply created;
  created.nonce = 0xdeadbeef;
  created.instance = 17;
  out.push_back(entry("CreateInstanceReply", Method::kCreateInstance,
                      FrameKind::kReply, created));

  proto::CatchUpRequest catch_up;
  catch_up.from = DpId(2);
  catch_up.incarnation = 3;
  out.push_back(entry("CatchUpRequest", Method::kCatchUp, FrameKind::kRequest,
                      catch_up));
  proto::CatchUpReply catch_up_reply;
  catch_up_reply.from = DpId(1);
  catch_up_reply.records = make_exchange(false).dispatches;
  out.push_back(entry("CatchUpReply", Method::kCatchUp, FrameKind::kReply,
                      catch_up_reply));

  proto::SaturationSignal saturation;
  saturation.from = DpId(4);
  saturation.avg_response_s = 2.5;
  saturation.observed_qps = 40.0;
  saturation.queue_depth = 12;
  out.push_back(entry("SaturationSignal", Method::kSaturation,
                      FrameKind::kOneWay, saturation));

  wire::OverloadNack nack;
  nack.reason = 1;
  nack.retry_after_us = 750'000;
  out.push_back(entry("OverloadNack", Method::kGetSiteLoads,
                      FrameKind::kOverloaded, nack));

  return out;
}

// Parse + (when a body survived) decode. The only hard guarantee fuzzed
// inputs get is "no throw, no out-of-bounds"; callers check the returned
// parse result for the cases with a defined outcome.
wire::FrameParse parse_and_decode(const CorpusEntry& e,
                                  std::span<const std::uint8_t> bytes) {
  wire::FrameHeader header;
  std::span<const std::uint8_t> body;
  const wire::FrameParse result = wire::parse_frame_ex(bytes, header, body);
  if (result != wire::FrameParse::kBadHeader) {
    // Body decode on corrupt input may fail or may (for messages with
    // optional trailing fields) succeed on a shorter valid encoding; it
    // must simply never misbehave.
    (void)e.decode_body(body);
  }
  return result;
}

TEST(WireFuzz, FullFramesParseAndDecode) {
  for (const CorpusEntry& e : corpus()) {
    wire::FrameHeader header;
    std::span<const std::uint8_t> body;
    ASSERT_EQ(wire::parse_frame_ex(e.frame, header, body),
              wire::FrameParse::kOk)
        << e.name;
    EXPECT_EQ(body.size(), header.body_size) << e.name;
    EXPECT_TRUE(e.decode_body(body)) << e.name;
  }
}

TEST(WireFuzz, EveryTruncationIsRejected) {
  for (const CorpusEntry& e : corpus()) {
    const std::vector<std::uint8_t> bytes = e.frame.to_vector();
    for (std::size_t len = 0; len < bytes.size(); ++len) {
      const std::span<const std::uint8_t> prefix(bytes.data(), len);
      // A strict prefix can never be kOk: either the header is cut short
      // (kBadHeader) or body_size exceeds what's left (kBodySizeMismatch).
      EXPECT_NE(parse_and_decode(e, prefix), wire::FrameParse::kOk)
          << e.name << " truncated to " << len;
    }
  }
}

TEST(WireFuzz, BitFlipsNeverThrowOrOverread) {
  Rng rng(0x5eed);
  for (const CorpusEntry& e : corpus()) {
    const std::vector<std::uint8_t> original = e.frame.to_vector();
    for (int trial = 0; trial < 200; ++trial) {
      std::vector<std::uint8_t> mutated = original;
      // 1-3 independent bit flips anywhere in the frame (header or body).
      const std::uint64_t flips = 1 + rng.uniform_index(3);
      for (std::uint64_t f = 0; f < flips; ++f) {
        const std::uint64_t bit = rng.uniform_index(mutated.size() * 8);
        mutated[bit / 8] ^= std::uint8_t(1u << (bit % 8));
      }
      wire::FrameHeader header;
      std::span<const std::uint8_t> body;
      const wire::FrameParse result =
          wire::parse_frame_ex(mutated, header, body);
      if (result == wire::FrameParse::kOk) {
        // A flip confined to the body keeps the frame well-formed; the
        // typed decode still must not misbehave on the damaged payload.
        EXPECT_EQ(body.size(), header.body_size) << e.name;
        (void)e.decode_body(body);
      }
    }
  }
}

TEST(WireFuzz, HostileBodySizeInHeaderIsAMismatch) {
  for (const CorpusEntry& e : corpus()) {
    std::vector<std::uint8_t> bytes = e.frame.to_vector();
    // body_size sits after version(2) + method(2) + kind(1) +
    // correlation(8) in both v1 and v2 layouts.
    const std::size_t offset = 2 + 2 + 1 + 8;
    ASSERT_GE(bytes.size(), offset + 4) << e.name;
    for (std::size_t i = 0; i < 4; ++i) bytes[offset + i] = 0xff;
    wire::FrameHeader header;
    std::span<const std::uint8_t> body;
    EXPECT_EQ(wire::parse_frame_ex(bytes, header, body),
              wire::FrameParse::kBodySizeMismatch)
        << e.name;
  }
}

TEST(WireFuzz, ChecksumCatchesEveryPayloadBitFlip) {
  // A v1 frame has no payload integrity at all: a body flip that keeps the
  // encoding well-formed silently decodes to wrong values. The v3 trailer
  // closes exactly that gap, so the guarantee worth pinning is total: EVERY
  // single-bit flip anywhere in body or trailer must surface as
  // kBadChecksum — never kOk, never a quiet decode of damaged data.
  const proto::ExchangeMessage msg = make_exchange(true);
  const net::Buffer frame =
      wire::make_frame(proto::Method::kExchange, wire::FrameKind::kOneWay, 7,
                       msg, /*deadline_us=*/0, /*checksum=*/true);
  const std::vector<std::uint8_t> bytes = frame.to_vector();

  wire::FrameHeader header;
  std::span<const std::uint8_t> body;
  ASSERT_EQ(wire::parse_frame_ex(bytes, header, body), wire::FrameParse::kOk);
  ASSERT_EQ(header.version, wire::FrameHeader::kChecksumVersion);
  const std::size_t body_offset = std::size_t(body.data() - bytes.data());

  for (std::size_t bit = body_offset * 8; bit < bytes.size() * 8; ++bit) {
    std::vector<std::uint8_t> mutated = bytes;
    mutated[bit / 8] ^= std::uint8_t(1u << (bit % 8));
    wire::FrameHeader h;
    std::span<const std::uint8_t> b;
    EXPECT_EQ(wire::parse_frame_ex(mutated, h, b),
              wire::FrameParse::kBadChecksum)
        << "bit " << bit;
  }
}

TEST(WireFuzz, ChecksumFrameWithoutTrailerIsAMismatch) {
  // Cutting the trailer off a v3 frame (or an attacker rewriting version
  // 1 -> 3 on a trailerless frame) must read as a size mismatch, not as a
  // short body with the last 4 payload bytes misread as a CRC.
  const net::Buffer frame =
      wire::make_frame(proto::Method::kGetSiteLoads, wire::FrameKind::kReply,
                       7, make_loads_reply(false), /*deadline_us=*/0,
                       /*checksum=*/true);
  std::vector<std::uint8_t> bytes = frame.to_vector();
  bytes.resize(bytes.size() - wire::FrameHeader::kChecksumTrailerSize);
  wire::FrameHeader header;
  std::span<const std::uint8_t> body;
  EXPECT_EQ(wire::parse_frame_ex(bytes, header, body),
            wire::FrameParse::kBodySizeMismatch);
}

TEST(WireFuzz, ChecksumSurvivesFuzzAndRoundtrips) {
  // Randomized complement to the exhaustive single-bit sweep: multi-bit
  // damage across header+body+trailer never throws, and an undamaged v3
  // frame keeps parsing kOk with the trailer stripped from the body span.
  Rng rng(0xc4c);
  const net::Buffer frame =
      wire::make_frame(proto::Method::kExchange, wire::FrameKind::kOneWay, 7,
                       make_exchange(false), /*deadline_us=*/0,
                       /*checksum=*/true);
  const std::vector<std::uint8_t> original = frame.to_vector();
  for (int trial = 0; trial < 500; ++trial) {
    std::vector<std::uint8_t> mutated = original;
    const std::uint64_t flips = 1 + rng.uniform_index(8);
    for (std::uint64_t f = 0; f < flips; ++f) {
      const std::uint64_t bit = rng.uniform_index(mutated.size() * 8);
      mutated[bit / 8] ^= std::uint8_t(1u << (bit % 8));
    }
    wire::FrameHeader header;
    std::span<const std::uint8_t> body;
    const wire::FrameParse result =
        wire::parse_frame_ex(mutated, header, body);
    if (result == wire::FrameParse::kOk) {
      // Damage the checksum failed to catch can only live in the header
      // fields outside the CRC's coverage (e.g. the correlation id).
      proto::ExchangeMessage out;
      (void)wire::decode(body, out);
    }
  }
  wire::FrameHeader header;
  std::span<const std::uint8_t> body;
  ASSERT_EQ(wire::parse_frame_ex(original, header, body),
            wire::FrameParse::kOk);
  EXPECT_EQ(body.size(), header.body_size);
  proto::ExchangeMessage out;
  EXPECT_TRUE(wire::decode(body, out));
  EXPECT_EQ(out.exchange_round, 41u);
}

TEST(WireFuzz, HostileVectorLengthPrefixFailsCleanly) {
  // The first bytes of a GetSiteLoadsReply body are the candidates count;
  // claim 2^32-1 elements and the Reader must refuse (each element needs
  // >= 1 byte) without allocating or overreading.
  const std::vector<std::uint8_t> encoded =
      wire::encode(make_loads_reply(false));
  std::vector<std::uint8_t> hostile = encoded;
  for (std::size_t i = 0; i < 4; ++i) hostile[i] = 0xff;
  proto::GetSiteLoadsReply out;
  EXPECT_FALSE(wire::decode(std::span<const std::uint8_t>(hostile), out));
  EXPECT_TRUE(out.candidates.empty());

  // Same for a string length prefix (CreateInstanceRequest.payload, which
  // follows the 8-byte nonce).
  proto::CreateInstanceRequest create;
  create.nonce = 5;
  create.payload = "hello";
  std::vector<std::uint8_t> hostile_str = wire::encode(create);
  for (std::size_t i = 0; i < 4; ++i) hostile_str[8 + i] = 0xff;
  proto::CreateInstanceRequest out_create;
  EXPECT_FALSE(
      wire::decode(std::span<const std::uint8_t>(hostile_str), out_create));
  EXPECT_TRUE(out_create.payload.empty());
}

TEST(WireFuzz, FailedDecodeYieldsZeroValues) {
  // Reads past the end zero their targets instead of leaving garbage.
  proto::SaturationSignal out;
  out.from = DpId(9);
  out.avg_response_s = 3.5;
  out.observed_qps = 10.0;
  out.queue_depth = 7;
  EXPECT_FALSE(wire::decode(std::span<const std::uint8_t>{}, out));
  EXPECT_EQ(out.from.value(), 0u);
  EXPECT_EQ(out.avg_response_s, 0.0);
  EXPECT_EQ(out.observed_qps, 0.0);
  EXPECT_EQ(out.queue_depth, 0);
}

TEST(WireFuzz, BidAndPriceTrailersRoundTripAndStayOptional) {
  // Values survive the trailer encoding...
  proto::ReportSelectionRequest sel;
  sel.job = JobId(100);
  sel.site = SiteId(7);
  sel.has_bid = true;
  sel.budget = 42.5;
  sel.deadline_s = 1800.0;
  proto::ReportSelectionRequest sel_out;
  ASSERT_TRUE(wire::decode(std::span<const std::uint8_t>(wire::encode(sel)),
                           sel_out));
  EXPECT_TRUE(sel_out.has_bid);
  EXPECT_DOUBLE_EQ(sel_out.budget, 42.5);
  EXPECT_DOUBLE_EQ(sel_out.deadline_s, 1800.0);

  const proto::GetSiteLoadsReply priced = make_priced_reply();
  proto::GetSiteLoadsReply priced_out;
  ASSERT_TRUE(wire::decode(std::span<const std::uint8_t>(wire::encode(priced)),
                           priced_out));
  ASSERT_EQ(priced_out.dp_prices.size(), 1u);
  EXPECT_DOUBLE_EQ(priced_out.dp_prices[0], 3.25);

  const proto::ExchangeMessage flood = make_priced_exchange();
  proto::ExchangeMessage flood_out;
  ASSERT_TRUE(wire::decode(std::span<const std::uint8_t>(wire::encode(flood)),
                           flood_out));
  EXPECT_TRUE(flood_out.has_price);
  EXPECT_DOUBLE_EQ(flood_out.price, 5.75);

  // ...and an absent bid leaves the legacy bytes untouched: the economic
  // fields are a pure suffix, never a layout change.
  proto::ReportSelectionRequest legacy = sel;
  legacy.has_bid = false;
  const std::vector<std::uint8_t> legacy_bytes = wire::encode(legacy);
  const std::vector<std::uint8_t> bid_bytes = wire::encode(sel);
  ASSERT_LT(legacy_bytes.size(), bid_bytes.size());
  EXPECT_TRUE(std::equal(legacy_bytes.begin(), legacy_bytes.end(),
                         bid_bytes.begin()));
}

TEST(WireFuzz, HopsTrailerRoundTripsAndStaysOptional) {
  // Values survive the fifth trailer slot, per-record depths included.
  const proto::ExchangeMessage hopped = make_hopped_exchange();
  proto::ExchangeMessage out;
  ASSERT_TRUE(wire::decode(std::span<const std::uint8_t>(wire::encode(hopped)),
                           out));
  EXPECT_TRUE(out.has_hops);
  EXPECT_EQ(out.hops, 3u);
  EXPECT_EQ(out.hop_depths, (std::vector<std::uint32_t>{0, 1, 3, 2}));
  // The hop trailer stacks fifth: every earlier trailer must have
  // survived alongside it.
  EXPECT_TRUE(out.has_price);
  EXPECT_TRUE(out.has_digest);
  EXPECT_TRUE(out.has_membership);

  // Empty hop_depths is the "all records at depth zero" encoding a
  // first-hop frame uses; it must round-trip as empty, not as garbage.
  proto::ExchangeMessage first_hop = make_exchange(true);
  first_hop.has_membership = true;
  first_hop.has_digest = true;
  first_hop.has_price = true;
  first_hop.has_hops = true;
  first_hop.hops = 0;
  proto::ExchangeMessage first_out;
  ASSERT_TRUE(wire::decode(
      std::span<const std::uint8_t>(wire::encode(first_hop)), first_out));
  EXPECT_TRUE(first_out.has_hops);
  EXPECT_EQ(first_out.hops, 0u);
  EXPECT_TRUE(first_out.hop_depths.empty());

  // A mesh frame (no hop trailer) keeps the legacy bytes: the overlay
  // fields are a pure suffix, never a layout change.
  proto::ExchangeMessage mesh = make_hopped_exchange();
  mesh.has_hops = false;
  mesh.hops = 0;
  mesh.hop_depths.clear();
  const std::vector<std::uint8_t> mesh_bytes = wire::encode(mesh);
  const std::vector<std::uint8_t> hop_bytes = wire::encode(hopped);
  ASSERT_LT(mesh_bytes.size(), hop_bytes.size());
  EXPECT_TRUE(std::equal(mesh_bytes.begin(), mesh_bytes.end(),
                         hop_bytes.begin()));
  proto::ExchangeMessage mesh_out;
  ASSERT_TRUE(wire::decode(std::span<const std::uint8_t>(mesh_bytes),
                           mesh_out));
  EXPECT_FALSE(mesh_out.has_hops);
}

TEST(WireFuzz, RequestIdTrailerRoundTripsAndStaysOptional) {
  // The request-id trailer stacks after the bid bytes, so stamping a
  // report forces a (possibly all-zero) bid — same stacking rule every
  // optional trailer in the protocol follows.
  proto::ReportSelectionRequest sel;
  sel.job = JobId(100);
  sel.site = SiteId(7);
  sel.has_request_id = true;
  sel.request_client = 31;
  sel.request_seq = 9;
  proto::ReportSelectionRequest out;
  ASSERT_TRUE(
      wire::decode(std::span<const std::uint8_t>(wire::encode(sel)), out));
  EXPECT_TRUE(out.has_request_id);
  EXPECT_EQ(out.request_client, 31u);
  EXPECT_EQ(out.request_seq, 9u);
  // The forced bid bytes decode as present-but-zero; the broker's pricing
  // guard (budget > 0 || deadline > 0) treats that as "no bid".
  EXPECT_TRUE(out.has_bid);
  EXPECT_EQ(out.budget, 0.0);
  EXPECT_EQ(out.deadline_s, 0.0);

  // An unstamped report keeps the legacy bytes: pure suffix, no layout
  // change.
  proto::ReportSelectionRequest legacy = sel;
  legacy.has_request_id = false;
  const std::vector<std::uint8_t> legacy_bytes = wire::encode(legacy);
  const std::vector<std::uint8_t> rid_bytes = wire::encode(sel);
  ASSERT_LT(legacy_bytes.size(), rid_bytes.size());
  EXPECT_TRUE(std::equal(legacy_bytes.begin(), legacy_bytes.end(),
                         rid_bytes.begin()));

  // The dedup-hit ack trailer round-trips the original placement.
  proto::Ack ack;
  ack.has_original = true;
  ack.original_site = SiteId(5);
  proto::Ack ack_out;
  ASSERT_TRUE(
      wire::decode(std::span<const std::uint8_t>(wire::encode(ack)), ack_out));
  EXPECT_TRUE(ack_out.has_original);
  EXPECT_EQ(ack_out.original_site, SiteId(5));
}

// ---------------------------------------------------------------------------
// WAL + checkpoint image fuzz: the on-disk framing makes the same promise
// the wire makes — hostile lengths, torn tails, and flipped bits terminate
// the scan cleanly (no throw, no overread). Run under asan-ubsan this is
// the recovery path's out-of-bounds detector.

std::vector<std::uint8_t> wal_corpus_log() {
  durable::SimDisk disk({}, 0x3a11);
  for (std::uint8_t i = 0; i < 3; ++i) {
    const std::vector<std::uint8_t> payload(24 + std::size_t(i) * 8,
                                            std::uint8_t(0xA0 + i));
    durable::wal_append(disk, i, payload);
  }
  return disk.log();
}

TEST(WireFuzz, WalScanOfEveryTornPrefixTerminatesCleanly) {
  const std::vector<std::uint8_t> log = wal_corpus_log();
  const durable::WalScan full = durable::wal_scan(log, [](auto, auto) {});
  ASSERT_EQ(full.frames, 3u);
  ASSERT_FALSE(full.truncated);

  for (std::size_t len = 0; len < log.size(); ++len) {
    const std::span<const std::uint8_t> prefix(log.data(), len);
    std::uint64_t delivered = 0;
    const durable::WalScan scan = durable::wal_scan(
        prefix, [&](std::uint8_t, std::span<const std::uint8_t> p) {
          ++delivered;
          // Every delivered payload must lie inside the prefix.
          ASSERT_GE(p.data(), log.data());
          ASSERT_LE(p.data() + p.size(), log.data() + len);
        });
    EXPECT_EQ(scan.frames, delivered);
    EXPECT_LE(scan.valid_bytes, len);
    // A strict prefix either ends exactly on a frame boundary (fewer
    // frames, not truncated) or mid-frame (truncated).
    if (!scan.truncated) EXPECT_LT(scan.frames, 3u);
  }
}

TEST(WireFuzz, WalScanSurvivesEverySingleBitFlip) {
  const std::vector<std::uint8_t> log = wal_corpus_log();
  for (std::size_t bit = 0; bit < log.size() * 8; ++bit) {
    std::vector<std::uint8_t> mutated = log;
    mutated[bit / 8] ^= std::uint8_t(1u << (bit % 8));
    const durable::WalScan scan = durable::wal_scan(mutated, [](auto, auto) {});
    // Every byte belongs to some frame, so one flip always kills exactly
    // the frame containing it: the scan stops there.
    EXPECT_TRUE(scan.truncated) << "bit " << bit;
    EXPECT_LT(scan.frames, 3u) << "bit " << bit;
  }
}

TEST(WireFuzz, WalHostileLengthPrefixFailsCleanly) {
  for (const std::uint32_t hostile :
       {std::uint32_t(0), std::uint32_t(0xffffffff), std::uint32_t(1u << 30)}) {
    std::vector<std::uint8_t> log = wal_corpus_log();
    for (std::size_t i = 0; i < 4; ++i) {
      log[i] = std::uint8_t(hostile >> (8 * i));
    }
    const durable::WalScan scan = durable::wal_scan(log, [](auto, auto) {});
    EXPECT_TRUE(scan.truncated) << hostile;
    EXPECT_EQ(scan.frames, 0u) << hostile;
  }
}

TEST(WireFuzz, WalRandomGarbageNeverThrows) {
  Rng rng(0xd15c);
  for (int trial = 0; trial < 500; ++trial) {
    std::vector<std::uint8_t> garbage(rng.uniform_index(96));
    for (std::uint8_t& b : garbage) b = std::uint8_t(rng.uniform_index(256));
    (void)durable::wal_scan(garbage, [](auto, auto) {});
    (void)durable::read_checkpoint_image(garbage);
  }
}

TEST(WireFuzz, CheckpointImageRejectsEverySingleBitFlip) {
  const std::vector<std::uint8_t> payload(64, 0x5c);
  const std::vector<std::uint8_t> image =
      durable::make_checkpoint_image(payload);
  ASSERT_TRUE(durable::read_checkpoint_image(image).has_value());
  for (std::size_t bit = 0; bit < image.size() * 8; ++bit) {
    std::vector<std::uint8_t> mutated = image;
    mutated[bit / 8] ^= std::uint8_t(1u << (bit % 8));
    EXPECT_FALSE(durable::read_checkpoint_image(mutated).has_value())
        << "bit " << bit;
  }
}

TEST(WireFuzz, RandomGarbageNeverThrows) {
  Rng rng(0xfacade);
  const std::vector<CorpusEntry> entries = corpus();
  for (int trial = 0; trial < 500; ++trial) {
    std::vector<std::uint8_t> garbage(rng.uniform_index(64));
    for (std::uint8_t& b : garbage) b = std::uint8_t(rng.uniform_index(256));
    for (const CorpusEntry& e : entries) (void)parse_and_decode(e, garbage);
  }
}

}  // namespace
}  // namespace digruber::net
