#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "digruber/workload/generator.hpp"
#include "digruber/workload/trace.hpp"

namespace digruber::workload {
namespace {

TEST(JobFactory, IdsGloballyUnique) {
  const grid::VoCatalog catalog = grid::VoCatalog::uniform(3, 3);
  auto ids = std::make_shared<JobIdAllocator>();
  WorkloadSpec spec;
  JobFactory a(spec, catalog, ids, Rng(1));
  JobFactory b(spec, catalog, ids, Rng(2));
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 100; ++i) {
    seen.insert(a.next(sim::Time::zero()).id.value());
    seen.insert(b.next(sim::Time::zero()).id.value());
  }
  EXPECT_EQ(seen.size(), 200u);
  EXPECT_EQ(ids->issued(), 200u);
}

TEST(JobFactory, FieldsWithinSpec) {
  const grid::VoCatalog catalog = grid::VoCatalog::uniform(4, 5);
  auto ids = std::make_shared<JobIdAllocator>();
  WorkloadSpec spec;
  spec.cpus_min = 2;
  spec.cpus_max = 6;
  spec.runtime_mean_s = 100;
  JobFactory factory(spec, catalog, ids, Rng(3));
  for (int i = 0; i < 500; ++i) {
    const grid::Job job = factory.next(sim::Time::from_seconds(i));
    EXPECT_GE(job.cpus, 2);
    EXPECT_LE(job.cpus, 6);
    EXPECT_GE(job.runtime.to_seconds(), 1.0);
    EXPECT_LT(job.vo.value(), 4u);
    EXPECT_EQ(catalog.group_vo(job.group), job.vo);
    EXPECT_EQ(catalog.user_group(job.user), job.group);
    EXPECT_DOUBLE_EQ(job.created.to_seconds(), double(i));
    EXPECT_EQ(job.input_bytes, 0u);
  }
}

TEST(JobFactory, RuntimeMeanApproximatelyRespected) {
  const grid::VoCatalog catalog = grid::VoCatalog::uniform(2, 2);
  auto ids = std::make_shared<JobIdAllocator>();
  WorkloadSpec spec;
  spec.runtime_mean_s = 500;
  spec.runtime_cv = 0.4;
  JobFactory factory(spec, catalog, ids, Rng(4));
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += factory.next(sim::Time::zero()).runtime.to_seconds();
  EXPECT_NEAR(sum / n, 500.0, 15.0);
}

TEST(JobFactory, VoSkewConcentratesLoad) {
  const grid::VoCatalog catalog = grid::VoCatalog::uniform(5, 1);
  auto ids = std::make_shared<JobIdAllocator>();
  WorkloadSpec spec;
  spec.vo_skew = 1.5;
  JobFactory factory(spec, catalog, ids, Rng(5));
  std::vector<int> counts(5, 0);
  for (int i = 0; i < 5000; ++i) ++counts[factory.next(sim::Time::zero()).vo.value()];
  EXPECT_GT(counts[0], counts[4] * 2);
}

TEST(JobFactory, FileSizesWhenConfigured) {
  const grid::VoCatalog catalog = grid::VoCatalog::uniform(1, 1);
  auto ids = std::make_shared<JobIdAllocator>();
  WorkloadSpec spec;
  spec.input_bytes_mean = 1'000'000;
  spec.output_bytes_mean = 500'000;
  JobFactory factory(spec, catalog, ids, Rng(6));
  double in_sum = 0, out_sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const grid::Job job = factory.next(sim::Time::zero());
    in_sum += double(job.input_bytes);
    out_sum += double(job.output_bytes);
  }
  EXPECT_NEAR(in_sum / n, 1e6, 5e4);
  EXPECT_NEAR(out_sum / n, 5e5, 2.5e4);
}

TEST(JobFactory, DeterministicPerSeed) {
  const grid::VoCatalog catalog = grid::VoCatalog::uniform(3, 3);
  WorkloadSpec spec;
  auto ids1 = std::make_shared<JobIdAllocator>();
  auto ids2 = std::make_shared<JobIdAllocator>();
  JobFactory a(spec, catalog, ids1, Rng(7));
  JobFactory b(spec, catalog, ids2, Rng(7));
  for (int i = 0; i < 50; ++i) {
    const grid::Job ja = a.next(sim::Time::zero());
    const grid::Job jb = b.next(sim::Time::zero());
    EXPECT_EQ(ja.vo, jb.vo);
    EXPECT_EQ(ja.group, jb.group);
    EXPECT_EQ(ja.runtime, jb.runtime);
  }
}

TEST(TraceLog, CsvRoundtrip) {
  TraceLog log;
  for (int i = 0; i < 20; ++i) {
    QueryTrace t;
    t.client = ClientId(std::uint64_t(i % 4));
    t.dp_index = std::uint32_t(i % 3);
    t.issued = sim::Time::from_seconds(i * 1.5);
    t.response_s = 0.25 * i;
    t.handled = i % 2 == 0;
    log.add(t);
  }
  std::ostringstream os;
  log.write_csv(os);
  std::istringstream is(os.str());
  const auto loaded = TraceLog::read_csv(is);
  ASSERT_TRUE(loaded.ok()) << loaded.error();
  ASSERT_EQ(loaded.value().size(), 20u);
  EXPECT_EQ(loaded.value().entries(), log.entries());
}

TEST(TraceLog, RejectsGarbage) {
  std::istringstream empty("");
  EXPECT_FALSE(TraceLog::read_csv(empty).ok());

  std::istringstream bad_header("nope,nope\n1,2,3,4,5\n");
  EXPECT_FALSE(TraceLog::read_csv(bad_header).ok());

  std::istringstream bad_row("client,dp_index,issued_s,response_s,handled\nx,y,z,w,v\n");
  EXPECT_FALSE(TraceLog::read_csv(bad_row).ok());
}

TEST(TraceLog, SkipsBlankLines) {
  std::istringstream is("client,dp_index,issued_s,response_s,handled\n\n1,0,2.5,0.5,1\n\n");
  const auto loaded = TraceLog::read_csv(is);
  ASSERT_TRUE(loaded.ok()) << loaded.error();
  ASSERT_EQ(loaded.value().size(), 1u);
  EXPECT_TRUE(loaded.value().entries()[0].handled);
  EXPECT_DOUBLE_EQ(loaded.value().entries()[0].issued.to_seconds(), 2.5);
}

}  // namespace
}  // namespace digruber::workload
