// chaos: seeded random fault-injection soak for the DI-GRUBER mesh.
//
//   chaos [--seeds N | --seed K] [--quick] [--verbose] [--churn]
//         [--partition] [--economy] [--recovery] [--overlay]
//
// Each seed deterministically generates a random fault schedule (crashes,
// partitions, link degradations) via FaultPlan::random, runs a small
// overload-controlled scenario under it, and checks conservation
// invariants the architecture must uphold no matter what the schedule did:
//
//   I1  every scheduled query resolves exactly once
//       (queries == handled + fallbacks per fleet),
//   I2  container admission conserves requests
//       (submitted == completed + refused + shed_deadline + aborted
//        + residue, and residue == 0 after the drain),
//   I3  no site's free-CPU accounting goes negative (USLA allocation
//       bookkeeping never over-commits).
//
// `--churn` turns on dynamic membership and adds runtime join/leave events
// to the random schedules, plus two membership invariants:
//
//   I4  every decision point that stays crashed for at least the
//       detection budget (two suspicion intervals) is declared dead by
//       every surviving initial peer within that budget,
//   I5  a joiner that never completed its snapshot bootstrap answered
//       zero queries (no partial-state decision point serves) — this
//       covers schedules that crash or partition the seed mid-transfer.
//
// `--partition` turns on partition tolerance plus frame checksums and adds
// asymmetric (one-way) partitions, client-splitting island partitions, and
// bit-flip corruption to the random schedules, plus four more invariants:
//
//   I6  reconciliation converges: after the last disruptive episode ends,
//       no decision point reports a digest mismatch once K exchange
//       rounds have elapsed (split brains heal bounded-fast),
//   I7  divergence triggers repair: any digest mismatch is answered by at
//       least one targeted delta pull (detection is never silent),
//   I8  checksum soundness: frames dropped for a bad CRC never exceed the
//       bit flips actually injected (no false-positive drops), and the
//       conservation invariants I1-I3 still hold with corruption live
//       (no corrupted frame poisons broker state),
//   I9  degraded points are not quarantined: a decision point that NACKs
//       degraded during a partition stays routable — without churn the
//       client fleet performs zero quarantines.
//
// `--partition --churn` composes both schedules and both invariant sets.
//
// `--economy` runs the same schedules with the karma allocator, market
// placement, and a strategic budget/deadline workload live, and adds one
// invariant:
//
//   I10 ledger conservation: at every decision point the credit bank is
//       zero-sum up to recorded expiry — credits spent equal credits
//       earned plus the unabsorbed pool, and total balance equals the
//       initial endowment plus net transfers minus cap expiry — no
//       crash, partition, or churn schedule may mint or leak credit.
//
// `--recovery` turns on durable decision points (WAL + checkpoints) and
// client request ids, adds disk faults (torn tails, bit rot, stalls) to the
// random schedules, and adds two more invariants, each gated per point on a
// clean disk — a schedule that tore or rotted a point's log is ALLOWED to
// lose committed suffix state, that is the fault model working:
//
//   I11 replay fidelity: a decision point whose disk survived intact
//       recovers exactly its pre-crash committed state — zero replay
//       mismatches across every crash/restart in the schedule,
//   I12 exactly-once dispatch: a decision point whose disk survived intact
//       never commits the same client request id twice, no matter how the
//       schedule interleaved retries with crashes and recoveries.
//
// `--recovery` composes with every other mode.
//
// `--overlay` runs each seed under a sparse dissemination overlay (the
// strategy rotates with the seed: tree, gossip, super-peer) on a larger
// deployment, with dynamic membership on — sparse overlays need the
// failure detector to repair around dead relays, so the mode forces it —
// and appends a settle tail to the run past the fault horizon. It adds
// one invariant:
//
//   I13 overlay completeness: every record accepted by any decision point
//       inside the post-fault quiet window reaches every point that is
//       alive and serving at harvest, within a strategy-specific round
//       bound. Sparse relaying (TTL suppression, gossip's random targets,
//       churn-rebuilt trees) may slow the flood, but must never lose a
//       record — residual convergence rides the anti-entropy paths.
//
// `--overlay` composes with `--churn` (join/leave events stress topology
// repair), `--partition`, and the rest.
//
// Exit status 0 iff every seed passes; failing seeds are printed so a
// failure reproduces with `chaos --seed K`.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "digruber/common/table.hpp"
#include "digruber/experiments/scenario.hpp"
#include "digruber/sim/fault_plan.hpp"
#include "digruber/trace/trace.hpp"

using namespace digruber;

namespace {

struct SeedReport {
  std::uint64_t seed = 0;
  bool pass = true;
  std::size_t faults = 0;
  std::uint64_t queries = 0;
  std::uint64_t shed = 0;
  std::uint64_t restarts = 0;
  std::uint64_t joins = 0;
  std::uint64_t deaths = 0;
  std::uint64_t mismatches = 0;
  std::uint64_t pulls = 0;
  std::uint64_t double_commits = 0;
  std::uint64_t epochs = 0;
  std::uint64_t denials = 0;
  std::uint64_t recoveries = 0;
  std::uint64_t replayed = 0;
  std::uint64_t retries = 0;
  std::uint64_t dedup_hits = 0;
  std::string strategy;
  std::uint64_t audited = 0;
  std::uint64_t suppressed = 0;
  std::vector<std::string> violations;
};

SeedReport run_seed(std::uint64_t seed, bool quick, bool verbose, bool churn,
                    bool partition, bool economy, bool recovery,
                    bool overlay_mode) {
  sim::RandomFaultOptions fault_options;
  fault_options.n_dps = overlay_mode ? 5 : 3;
  fault_options.horizon = quick ? sim::Duration::minutes(6) : sim::Duration::minutes(15);
  fault_options.episodes = quick ? 3 : 5;
  if (churn) {
    fault_options.allow_joins = true;
    fault_options.allow_leaves = true;
    fault_options.episodes += 2;  // keep crash/partition pressure alongside churn
  }
  if (partition) {
    fault_options.allow_oneway_partitions = true;
    fault_options.allow_corruption = true;
    fault_options.split_clients_in_partitions = true;
    fault_options.episodes += 2;  // dedicated one-way / corruption pressure
  }
  if (recovery) {
    // Disk faults ride along with crash episodes (a tear strikes right
    // before the crash, rot while the point is down, stalls bracket the
    // window), so extra episodes keep the crash/recovery pressure up.
    fault_options.allow_disk_faults = true;
    fault_options.episodes += 2;
  }
  const sim::FaultPlan plan = sim::FaultPlan::random(seed, fault_options);

  experiments::ScenarioConfig config;
  config.name = "chaos-" + std::to_string(seed);
  config.seed = seed;
  config.n_dps = int(fault_options.n_dps);
  config.grid_scale = 2;
  config.n_clients = quick ? 16 : 32;
  config.duration = fault_options.horizon;
  config.exchange_interval = sim::Duration::seconds(30);
  config.fault_plan = plan;
  config.enable_failover = true;
  config.attempt_timeout = sim::Duration::seconds(5);
  config.overload_control = true;
  // A tight queue keeps the shedding machinery exercised even at this
  // small scale.
  config.profile.queue_limit = 64;
  if (churn || overlay_mode) {
    config.membership = true;
    // Tighten the detector so dead verdicts land inside the random crash
    // windows (5%-25% of the horizon): 15 s heartbeats, dead after 30 s of
    // silence, detection budget = 2 suspicion intervals = 45 s. Overlay
    // mode forces membership even without churn: a sparse topology must
    // repair around permanently-crashed relays or I13 cannot hold.
    config.exchange_interval = sim::Duration::seconds(15);
    config.membership_options.suspect_after = 1.5;
    config.membership_options.dead_after = 2.0;
    config.membership_options.join_snapshot_timeout = sim::Duration::seconds(5);
    config.membership_options.join_retry_backoff = sim::Duration::seconds(5);
  }
  if (economy) {
    // Karma + market + a strategic bidder, all live under the fault
    // schedule: a short epoch lands several settlements inside even the
    // quick horizon, and DP crashes reset banks mid-epoch — exactly the
    // lifecycle I10 must stay zero-sum across.
    config.economy_options.enabled = true;
    config.economy_options.allocator = economy::Allocator::kKarma;
    config.economy_options.epoch = sim::Duration::seconds(30);
    config.economy_options.scarce_free_fraction = 0.5;
    config.economy_options.initial_credit_epochs = 0.5;
    // Ration the brokered capacity well under the grid so the gate binds
    // and settlements move real credit (not just zeros).
    config.economy_options.capacity_cpus = 60;
    config.market_placement = true;
    config.workload.n_vos = 4;
    config.workload.strategic_vo = 0;
    config.workload.strategic_factor = 10.0;
    config.workload.budget_mean = 50.0;
    config.workload.deadline_slack = 3.0;
  }
  if (recovery) {
    // Durable points + stamped reports. A short checkpoint interval lands
    // several checkpoint/truncate cycles inside even the quick horizon, so
    // recoveries exercise the checkpoint-restore path, not just raw WAL
    // replay; a small dedup window keeps eviction live under load.
    config.durability = true;
    config.durability_options.checkpoint_interval = sim::Duration::minutes(2);
    config.durability_options.dedup_window = 256;
    config.request_ids = true;
  }
  trace::Tracer tracer;
  if (partition) {
    config.partition_tolerance = true;
    config.frame_checksums = true;
    // Frequent rounds so digests disagree, pulls fire, and convergence is
    // observable inside the random partition windows (5%-25% of horizon).
    config.exchange_interval = sim::Duration::seconds(15);
    config.partition_options.staleness_threshold = sim::Duration::seconds(45);
    config.partition_options.delta_pull_min_gap = sim::Duration::seconds(10);
    // I6 needs mismatch timestamps, not just counts: trace the run.
    config.tracer = &tracer;
  }

  std::uint32_t i13_bound_rounds = 0;
  overlay::Kind overlay_kind = overlay::Kind::kMesh;
  if (overlay_mode) {
    // The strategy rotates with the seed so a 20-seed soak covers all
    // three sparse overlays. Round bounds are deliberately generous: they
    // cover the topology's worst relay path plus the gap-triggered
    // catch-up fallback (gossip) and a post-repair re-flood (tree).
    switch (seed % 3) {
      case 0:
        overlay_kind = overlay::Kind::kTree;
        i13_bound_rounds = 8;
        break;
      case 1:
        overlay_kind = overlay::Kind::kGossip;
        i13_bound_rounds = 10;
        break;
      default:
        overlay_kind = overlay::Kind::kSuperPeer;
        i13_bound_rounds = 6;
        break;
    }
    config.overlay_options.kind = overlay_kind;
    config.overlay_audit = true;
    // Settle tail past the fault horizon: the audited records need the
    // full round bound (plus membership-repair margin) to flood before
    // harvest, and the quiet window must stay non-empty even when the
    // last scheduled fault lands at the horizon itself (the window opens
    // 4 intervals after it; the cutoff sits bound+2 intervals before
    // harvest; the tail covers both with margin to spare).
    config.duration =
        fault_options.horizon +
        sim::Duration::seconds(double(i13_bound_rounds + 8) *
                               config.exchange_interval.to_seconds());
  }

  if (verbose) {
    std::cout << "seed " << seed << " plan:\n"
              << (plan.empty() ? std::string("  (no faults)\n") : plan.describe());
  }

  const experiments::ScenarioResult result = experiments::run_scenario(config);

  SeedReport report;
  report.seed = seed;
  report.faults = plan.size();
  report.queries = result.clients.queries;
  report.shed = result.overload.shed_total();

  auto violate = [&report](std::string what) {
    report.pass = false;
    report.violations.push_back(std::move(what));
  };

  // I1: exactly-once query resolution across the fleet.
  if (result.clients.queries != result.clients.handled + result.clients.fallbacks) {
    std::ostringstream os;
    os << "I1 queries=" << result.clients.queries
       << " != handled=" << result.clients.handled
       << " + fallbacks=" << result.clients.fallbacks;
    violate(os.str());
  }

  // I2: per-container request conservation, with an empty queue after the
  // post-window drain.
  for (std::size_t d = 0; d < result.dps.size(); ++d) {
    const experiments::DpStats& dp = result.dps[d];
    report.restarts += dp.restarts;
    const std::uint64_t accounted =
        dp.completed + dp.refused + dp.shed_deadline + dp.aborted + dp.queue_residue;
    if (dp.submitted != accounted) {
      std::ostringstream os;
      os << "I2 dp" << d << " submitted=" << dp.submitted
         << " != completed=" << dp.completed << " + refused=" << dp.refused
         << " + shed_deadline=" << dp.shed_deadline << " + aborted=" << dp.aborted
         << " + residue=" << dp.queue_residue;
      violate(os.str());
    }
    if (dp.queue_residue != 0) {
      std::ostringstream os;
      os << "I2 dp" << d << " residue=" << dp.queue_residue << " after drain";
      violate(os.str());
    }
  }

  // I3: allocation bookkeeping never over-commits a site.
  if (result.sites_overcommitted != 0) {
    std::ostringstream os;
    os << "I3 sites_overcommitted=" << result.sites_overcommitted;
    violate(os.str());
  }

  if (churn) {
    report.joins = plan.join_count();
    report.deaths = result.membership.deaths_declared;

    // Reconstruct each initial DP's downtime from the plan: crash->restart
    // spans plus permanent leaves (a left DP stays silent to the horizon).
    struct DownSpan {
      double start, end;
      bool crash;
    };
    const double horizon_s = fault_options.horizon.to_seconds();
    std::vector<std::vector<DownSpan>> down(fault_options.n_dps);
    for (const auto& e : plan.events()) {
      if (e.dp >= fault_options.n_dps) continue;
      if (e.kind == sim::FaultKind::kDpCrash) {
        down[e.dp].push_back({e.at.to_seconds(), horizon_s, true});
      } else if (e.kind == sim::FaultKind::kDpRestart) {
        if (!down[e.dp].empty()) down[e.dp].back().end = e.at.to_seconds();
      } else if (e.kind == sim::FaultKind::kDpLeave) {
        down[e.dp].push_back({e.at.to_seconds(), horizon_s, false});
      }
    }
    auto down_in = [&](std::size_t p, double lo, double hi) {
      for (const DownSpan& s : down[p]) {
        if (s.start < hi && lo < s.end) return true;
      }
      return false;
    };

    // I4: every crash that outlasts the detection budget is declared dead
    // by every initial peer that was itself up (and hearing heartbeats)
    // through the whole detection window. The observer's verdict for the
    // crashed point at the deadline must be kDead — partition-induced
    // earlier verdicts count too, since nothing can refute them while the
    // target is actually down.
    const double interval_s = config.exchange_interval.to_seconds();
    double budget_s =
        2.0 * config.membership_options.suspect_after * interval_s;
    if (overlay_mode && overlay_kind != overlay::Kind::kMesh) {
      // Sparse overlays detect deaths at the overlay neighbors and gossip
      // the verdict outward, so distant peers learn it a few rounds later;
      // gossip additionally stretches its detector clocks by the expected
      // contact period (~2(n-1)/fanout). Budget both effects.
      const double stretch =
          overlay_kind == overlay::Kind::kGossip ? 3.0 : 1.0;
      budget_s = budget_s * stretch + double(i13_bound_rounds) * interval_s;
    }
    for (std::size_t d = 0; d < down.size(); ++d) {
      for (const DownSpan& span : down[d]) {
        if (!span.crash) continue;
        if (span.end - span.start < budget_s + 1.0) continue;  // too brief
        const double deadline = span.start + budget_s + 1e-6;
        for (std::size_t p = 0; p < std::size_t(fault_options.n_dps); ++p) {
          if (p == d) continue;
          if (down_in(p, span.start - interval_s, deadline)) continue;
          bool dead_at_deadline = false;
          for (const auto& tr : result.dps[p].membership_transitions) {
            if (tr.peer != DpId(d) || tr.at.to_seconds() > deadline) continue;
            dead_at_deadline = tr.to == ::digruber::digruber::MemberState::kDead;
          }
          if (!dead_at_deadline) {
            std::ostringstream os;
            os << "I4 dp" << p << " did not declare dp" << d
               << " dead within " << budget_s << "s of the crash at "
               << span.start << "s";
            violate(os.str());
          }
        }
      }
    }

    // I5: a joiner that never reached serving answered zero queries.
    for (std::size_t d = std::size_t(fault_options.n_dps); d < result.dps.size();
         ++d) {
      const experiments::DpStats& dp = result.dps[d];
      if (dp.serving_since_s < 0.0 && dp.queries > 0) {
        std::ostringstream os;
        os << "I5 joiner dp" << d << " answered " << dp.queries
           << " queries without completing its bootstrap";
        violate(os.str());
      }
    }
  }

  if (partition) {
    report.mismatches = result.partition.digest_mismatches;
    report.pulls = result.partition.delta_pulls_sent;
    report.double_commits = result.partition.double_commits;

    // I6: bounded convergence. Find when the last disruptive condition
    // ended (heal / restore / restart / corruption off); K exchange rounds
    // later every pairwise digest must agree again, so no mismatch instant
    // may be traced after that deadline. Vacuous when the schedule leaves
    // no quiet tail to observe.
    const double horizon_s = fault_options.horizon.to_seconds();
    double last_heal_s = 0.0;
    bool disrupted = false;
    for (const auto& e : plan.events()) {
      switch (e.kind) {
        case sim::FaultKind::kPartition:
        case sim::FaultKind::kOneWayPartition:
        case sim::FaultKind::kLinkDegrade:
        case sim::FaultKind::kDpCrash:
          disrupted = true;
          break;
        case sim::FaultKind::kCorrupt:
          if (e.corrupt_rate > 0.0) {
            disrupted = true;
          } else {
            last_heal_s = std::max(last_heal_s, e.at.to_seconds());
          }
          break;
        case sim::FaultKind::kHeal:
        case sim::FaultKind::kOneWayHeal:
        case sim::FaultKind::kLinkRestore:
        case sim::FaultKind::kDpRestart:
          last_heal_s = std::max(last_heal_s, e.at.to_seconds());
          break;
        default:
          break;
      }
    }
    // Budget: ~1.3 rounds for the digest settle window (interval + slack),
    // one round to receive a divergent digest, the pull round trip, and a
    // second detect+pull hop for cascades through peers that were
    // themselves partially diverged (churn joiners make these real).
    constexpr double kConvergenceRounds = 6.0;
    const double deadline_s =
        last_heal_s + kConvergenceRounds * config.exchange_interval.to_seconds();
    if (disrupted && deadline_s < horizon_s) {
      trace::Tracer::Filter filter;
      filter.category = trace::Category::kDp;
      filter.name = "dp.digest_mismatch";
      filter.from = sim::Time::from_seconds(deadline_s);
      const auto late = tracer.query(filter);
      if (!late.empty()) {
        std::ostringstream os;
        os << "I6 " << late.size() << " digest mismatch(es) after the "
           << "convergence deadline at " << deadline_s << "s (last heal "
           << last_heal_s << "s + " << kConvergenceRounds
           << " exchange rounds); first at " << late.front().ts.to_seconds()
           << "s on dp" << late.front().actor;
        violate(os.str());
      }
    }

    // I7: detection is never silent — any digest mismatch triggers at
    // least one targeted delta pull.
    if (result.partition.digest_mismatches > 0 &&
        result.partition.delta_pulls_sent == 0) {
      std::ostringstream os;
      os << "I7 " << result.partition.digest_mismatches
         << " digest mismatches but zero delta pulls";
      violate(os.str());
    }

    // I8: checksum soundness — every CRC drop maps to an injected flip
    // (conservation under the surviving corruption is covered by I1-I3).
    if (result.partition.frames_bad_checksum > result.partition.packets_corrupted) {
      std::ostringstream os;
      os << "I8 frames_bad_checksum=" << result.partition.frames_bad_checksum
         << " > packets_corrupted=" << result.partition.packets_corrupted;
      violate(os.str());
    }

    // I9: degraded NACKs never quarantine. Quarantine is reserved for
    // membership-declared dead/left points, so without churn the client
    // fleet must perform zero quarantines no matter how many degraded
    // redirects the partitions caused.
    if (!churn && result.membership.client_dps_quarantined != 0) {
      std::ostringstream os;
      os << "I9 " << result.membership.client_dps_quarantined
         << " client quarantine(s) without membership churn (degraded "
         << "points must stay routable)";
      violate(os.str());
    }
  }

  if (economy) {
    report.epochs = result.economy.epochs_settled;
    report.denials = result.economy.credit_denials;

    // I10: per-DP credit conservation, whatever the schedule did. A
    // crashed DP's bank resets with its other volatile state, so the
    // identities hold over the final lifetime's stats.
    for (std::size_t d = 0; d < result.dps.size(); ++d) {
      const economy::BankStats& bank = result.dps[d].economy;
      auto eps = [](double scale) { return 1e-6 * std::max(1.0, scale); };
      const double transfer_gap =
          bank.spent - (bank.earned + bank.expired_pool);
      if (std::abs(transfer_gap) > eps(bank.spent)) {
        std::ostringstream os;
        os << "I10 dp" << d << " spent=" << bank.spent
           << " != earned=" << bank.earned
           << " + expired_pool=" << bank.expired_pool;
        violate(os.str());
      }
      double total_balance = 0;
      for (const auto& ledger : bank.ledgers) total_balance += ledger.balance;
      const double expected =
          bank.initial_total + bank.earned - bank.spent - bank.expired_cap;
      if (std::abs(total_balance - expected) > eps(expected)) {
        std::ostringstream os;
        os << "I10 dp" << d << " total balance=" << total_balance
           << " != initial=" << bank.initial_total << " + earned=" << bank.earned
           << " - spent=" << bank.spent << " - expired_cap=" << bank.expired_cap;
        violate(os.str());
      }
    }
  }

  if (recovery) {
    report.recoveries = result.durability.recoveries;
    report.replayed = result.durability.replay_records;
    report.retries = result.durability.client_report_retries;
    report.dedup_hits = result.durability.dedup_hits;

    // I11/I12 are gated per decision point on a clean disk: a schedule
    // that tore this point's WAL tail or flipped a stored bit is allowed
    // to lose the committed suffix (and with it a dedup entry) — the
    // recovery machinery's promise only covers media that survived. A
    // point the schedule never touched must recover perfectly.
    for (std::size_t d = 0; d < result.dps.size(); ++d) {
      const experiments::DpStats& dp = result.dps[d];
      const bool clean_disk = dp.disk_torn_tails == 0 && dp.disk_bit_flips == 0;
      if (!clean_disk) continue;

      // I11: replay restored exactly the pre-crash committed state.
      if (dp.replay_mismatches != 0) {
        std::ostringstream os;
        os << "I11 dp" << d << " lost " << dp.replay_mismatches
           << " committed record(s) across " << dp.recoveries
           << " recover(ies) with an intact disk";
        violate(os.str());
      }
      // I12: one request id, at most one committed dispatch at this point.
      if (dp.duplicate_dispatches != 0) {
        std::ostringstream os;
        os << "I12 dp" << d << " committed " << dp.duplicate_dispatches
           << " duplicate dispatch(es) for retried request id(s) with an "
           << "intact disk (dedup_hits=" << dp.dedup_hits << ")";
        violate(os.str());
      }
    }
  }

  if (overlay_mode) {
    report.strategy = overlay::kind_name(overlay_kind);
    report.suppressed = result.overlay.relays_suppressed;

    // I13: quiet-window completeness. Audit only records accepted after
    // the last scheduled fault (plus membership-repair margin: dead
    // verdicts land within 3 intervals, then the strategy rebuilds) and
    // early enough that the full round bound fits before harvest. Every
    // point alive and serving at harvest must hold each audited
    // (origin, seq) key — sparse relaying may be slow, never lossy.
    const double interval_s = config.exchange_interval.to_seconds();
    double last_event_s = 0.0;
    for (const auto& e : plan.events()) {
      last_event_s = std::max(last_event_s, e.at.to_seconds());
    }
    const double window_lo = last_event_s + 4.0 * interval_s;
    const double cutoff_s = config.duration.to_seconds() -
                            double(i13_bound_rounds + 2) * interval_s;
    if (verbose) {
      std::cout << "I13 window (" << window_lo << ", " << cutoff_s
                << "), duration " << config.duration.to_seconds() << "\n";
      for (std::size_t r = 0; r < result.dps.size(); ++r) {
        for (const auto& tr : result.dps[r].membership_transitions) {
          std::cout << "dp" << r << " t=" << tr.at.to_seconds() << " dp"
                    << tr.peer.value() << " -> "
                    << ::digruber::digruber::member_state_name(tr.to)
                    << " inc=" << tr.incarnation << "\n";
        }
      }
      for (std::size_t r = 0; r < result.dps.size(); ++r) {
        const experiments::DpStats& dp = result.dps[r];
        std::cout << "dp" << r << " running=" << dp.running
                  << " serving=" << dp.serving << " left=" << dp.left
                  << " applied=" << dp.applied_keys.size()
                  << " own=" << dp.own_records.size() << " max-seq:";
        std::map<std::uint64_t, std::uint64_t> max_seq;
        for (const auto& [orig, seq] : dp.applied_keys)
          max_seq[orig] = std::max(max_seq[orig], seq);
        for (const auto& [orig, seq] : max_seq)
          std::cout << " " << orig << ":" << seq;
        std::cout << "\n";
      }
    }
    for (std::size_t o = 0; o < result.dps.size(); ++o) {
      for (const auto& [seq, when] : result.dps[o].own_records) {
        if (when <= window_lo || when >= cutoff_s) continue;
        ++report.audited;
        const std::pair<std::uint64_t, std::uint64_t> key{o, seq};
        for (std::size_t r = 0; r < result.dps.size(); ++r) {
          if (r == o) continue;
          const experiments::DpStats& dp = result.dps[r];
          if (!dp.running || !dp.serving || dp.left) continue;
          if (!std::binary_search(dp.applied_keys.begin(),
                                  dp.applied_keys.end(), key)) {
            std::ostringstream os;
            os << "I13 record (origin dp" << o << ", seq " << seq
               << ") accepted at " << when << "s never reached dp" << r
               << " (" << report.strategy << ", bound " << i13_bound_rounds
               << " rounds)";
            violate(os.str());
          }
        }
      }
    }
  }

  return report;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t n_seeds = 20;
  bool single = false;
  std::uint64_t single_seed = 0;
  bool quick = false;
  bool verbose = false;
  bool churn = false;
  bool partition = false;
  bool economy = false;
  bool recovery = false;
  bool overlay_mode = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* flag) -> std::uint64_t {
      if (i + 1 >= argc) {
        std::cerr << flag << " needs a value\n";
        std::exit(2);
      }
      return std::stoull(argv[++i]);
    };
    if (arg == "--seeds") {
      n_seeds = next("--seeds");
    } else if (arg == "--seed") {
      single = true;
      single_seed = next("--seed");
    } else if (arg == "--quick") {
      quick = true;
    } else if (arg == "--verbose") {
      verbose = true;
    } else if (arg == "--churn") {
      churn = true;
    } else if (arg == "--partition") {
      partition = true;
    } else if (arg == "--economy") {
      economy = true;
    } else if (arg == "--recovery") {
      recovery = true;
    } else if (arg == "--overlay") {
      overlay_mode = true;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: " << argv[0]
                << " [--seeds N | --seed K] [--quick] [--verbose] [--churn]"
                << " [--partition] [--economy] [--recovery] [--overlay]\n";
      return 0;
    } else {
      std::cerr << "unknown flag: " << arg << "\n";
      return 2;
    }
  }

  std::vector<std::uint64_t> seeds;
  if (single) {
    seeds.push_back(single_seed);
  } else {
    for (std::uint64_t s = 1; s <= n_seeds; ++s) seeds.push_back(s);
  }

  std::vector<std::string> header{"seed", "faults", "queries", "shed", "restarts"};
  if (churn) {
    header.push_back("joins");
    header.push_back("deaths");
  }
  if (partition) {
    header.push_back("mismatch");
    header.push_back("pulls");
    header.push_back("dblcommit");
  }
  if (economy) {
    header.push_back("epochs");
    header.push_back("denials");
  }
  if (recovery) {
    header.push_back("recover");
    header.push_back("replayed");
    header.push_back("retries");
    header.push_back("dedup");
  }
  if (overlay_mode) {
    header.push_back("strategy");
    header.push_back("audited");
    header.push_back("ttl-drops");
  }
  header.push_back("verdict");
  Table table(header);
  std::vector<std::uint64_t> failing;
  for (const std::uint64_t seed : seeds) {
    const SeedReport report = run_seed(seed, quick, verbose, churn, partition,
                                       economy, recovery, overlay_mode);
    std::vector<std::string> row{
        std::to_string(report.seed), std::to_string(report.faults),
        std::to_string(report.queries), std::to_string(report.shed),
        std::to_string(report.restarts)};
    if (churn) {
      row.push_back(std::to_string(report.joins));
      row.push_back(std::to_string(report.deaths));
    }
    if (partition) {
      row.push_back(std::to_string(report.mismatches));
      row.push_back(std::to_string(report.pulls));
      row.push_back(std::to_string(report.double_commits));
    }
    if (economy) {
      row.push_back(std::to_string(report.epochs));
      row.push_back(std::to_string(report.denials));
    }
    if (recovery) {
      row.push_back(std::to_string(report.recoveries));
      row.push_back(std::to_string(report.replayed));
      row.push_back(std::to_string(report.retries));
      row.push_back(std::to_string(report.dedup_hits));
    }
    if (overlay_mode) {
      row.push_back(report.strategy);
      row.push_back(std::to_string(report.audited));
      row.push_back(std::to_string(report.suppressed));
    }
    row.push_back(report.pass ? "PASS" : "FAIL");
    table.add_row(row);
    if (!report.pass) {
      failing.push_back(report.seed);
      for (const std::string& v : report.violations) {
        std::cout << "seed " << report.seed << " VIOLATION: " << v << "\n";
      }
    }
  }
  table.render(std::cout);

  if (failing.empty()) {
    std::cout << "chaos: " << seeds.size() << "/" << seeds.size()
              << " seeds passed all invariants\n";
    return 0;
  }
  std::cout << "chaos: " << failing.size() << " failing seed(s):";
  for (const std::uint64_t s : failing) std::cout << " " << s;
  std::cout << "\nreproduce with: " << argv[0] << " --seed <K> --verbose"
            << (quick ? " --quick" : "") << (churn ? " --churn" : "")
            << (partition ? " --partition" : "")
            << (economy ? " --economy" : "")
            << (recovery ? " --recovery" : "")
            << (overlay_mode ? " --overlay" : "") << "\n";
  return 1;
}
