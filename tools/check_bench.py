#!/usr/bin/env python3
"""Compare a Google Benchmark JSON run against a committed baseline.

Usage: check_bench.py BASELINE.json CURRENT.json [--threshold 0.25]

Matches benchmarks by name and fails (exit 1) when any benchmark's cpu_time
regressed by more than the threshold (default +25%). Benchmarks present in
only one file are reported but do not fail the check, so adding or retiring
benchmarks does not require touching the checker.

Stdlib only — runs anywhere CI has a python3.
"""

import argparse
import json
import sys


def load(path):
    with open(path) as f:
        doc = json.load(f)
    out = {}
    for b in doc.get("benchmarks", []):
        # Aggregate rows (mean/median/stddev) are recomputed here instead:
        # take the MIN cpu_time across repetitions. On shared CI runners the
        # min is the least-noisy estimate of a benchmark's true cost —
        # scheduling interference and frequency dips only ever add time.
        if b.get("run_type") == "aggregate":
            continue
        name = b.get("run_name", b["name"])
        cpu = float(b["cpu_time"])
        out[name] = min(cpu, out.get(name, cpu))
    return out


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="allowed fractional cpu_time regression")
    args = parser.parse_args()

    baseline = load(args.baseline)
    current = load(args.current)
    if not baseline:
        print(f"error: no benchmarks in baseline {args.baseline}")
        return 2

    failures = []
    width = max(len(n) for n in set(baseline) | set(current))
    print(f"{'benchmark':<{width}}  {'baseline':>12}  {'current':>12}  delta")
    for name in sorted(set(baseline) | set(current)):
        if name not in current:
            print(f"{name:<{width}}  {baseline[name]:>12.1f}  {'absent':>12}  (ignored)")
            continue
        if name not in baseline:
            print(f"{name:<{width}}  {'absent':>12}  {current[name]:>12.1f}  (new, ignored)")
            continue
        ratio = current[name] / baseline[name] if baseline[name] > 0 else 1.0
        delta = (ratio - 1.0) * 100.0
        flag = ""
        if ratio > 1.0 + args.threshold:
            failures.append(name)
            flag = "  REGRESSED"
        print(f"{name:<{width}}  {baseline[name]:>12.1f}  {current[name]:>12.1f}  "
              f"{delta:+6.1f}%{flag}")

    if failures:
        print(f"\nFAIL: {len(failures)} benchmark(s) regressed more than "
              f"{args.threshold:.0%} vs baseline: {', '.join(failures)}")
        return 1
    print(f"\nOK: no benchmark regressed more than {args.threshold:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
