// grubsim-replay: run GRUB-SIM over a saved brokering-query trace and
// report how many decision points the load needs.
//
//   grubsim-replay trace.csv [--dps N] [--capacity QPS] [--threshold S]
//                  [--open-loop] [--think S]
//
// Produce a trace with `digruber-run ... --query-trace trace.csv` or from
// any real broker log converted to the CSV schema in workload/trace.hpp.
#include <cstring>
#include <iostream>
#include <string>

#include "digruber/common/table.hpp"
#include "digruber/grubsim/grubsim.hpp"

using namespace digruber;

int main(int argc, char** argv) {
  std::string trace_path;
  grubsim::GrubSimConfig config;
  config.mode = grubsim::ReplayMode::kClosedLoop;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* flag) -> double {
      if (i + 1 >= argc) {
        std::cerr << flag << " needs a value\n";
        std::exit(2);
      }
      return std::stod(argv[++i]);
    };
    if (arg == "--dps") config.initial_dps = int(next("--dps"));
    else if (arg == "--capacity") config.dp_capacity_qps = next("--capacity");
    else if (arg == "--threshold") config.response_threshold_s = next("--threshold");
    else if (arg == "--think") config.think_s = next("--think");
    else if (arg == "--open-loop") config.mode = grubsim::ReplayMode::kOpenTrace;
    else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: " << argv[0]
                << " trace.csv [--dps N] [--capacity QPS] [--threshold S]"
                   " [--open-loop] [--think S]\n";
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown flag: " << arg << "\n";
      return 2;
    } else {
      trace_path = arg;
    }
  }
  if (trace_path.empty()) {
    std::cerr << "usage: " << argv[0] << " trace.csv [options]\n";
    return 2;
  }

  const auto trace = workload::TraceLog::load(trace_path);
  if (!trace.ok()) {
    std::cerr << "error: " << trace.error() << "\n";
    return 1;
  }
  std::cerr << "replaying " << trace.value().size() << " queries ("
            << (config.mode == grubsim::ReplayMode::kClosedLoop ? "closed-loop"
                                                                : "open-loop")
            << ", " << config.initial_dps << " initial decision point(s), "
            << config.dp_capacity_qps << " q/s each)\n";

  const grubsim::GrubSimResult result = grubsim::run_grubsim(trace.value(), config);

  Table table({"metric", "value"});
  table.add_row({"initial decision points", std::to_string(result.initial_dps)});
  table.add_row({"additional provisioned", std::to_string(result.added_dps)});
  table.add_row({"total required", std::to_string(result.total_dps())});
  table.add_row({"overload events", std::to_string(result.overload_events)});
  table.add_row({"avg response (s)", Table::num(result.avg_response_s, 2)});
  table.add_row({"max response (s)", Table::num(result.max_response_s, 2)});
  table.add_row({"queries replayed", std::to_string(result.queries_replayed)});
  table.render(std::cout);
  for (std::size_t i = 0; i < result.provision_times_s.size(); ++i) {
    std::cout << "decision point " << result.initial_dps + int(i)
              << " provisioned at t=" << Table::num(result.provision_times_s[i], 0)
              << " s\n";
  }
  return 0;
}
