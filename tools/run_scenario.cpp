// digruber-run: drive a full DI-GRUBER experiment from a flat config file
// without recompiling.
//
//   digruber-run [scenario.conf] [key=value ...]
//                [--query-trace out.csv]
//                [--trace out.json] [--trace-format chrome|jsonl]
//
// Prints the DiPerF figure (load / response / throughput vs time), the
// Tables-1/2-style performance breakdown, response-time percentiles, and
// per-decision-point stats. `--query-trace` saves the brokering-query
// trace for grubsim-replay; `--trace` records the event trace (spans,
// instants, packet hops) for Perfetto (chrome) or trace_inspect (jsonl).
//
// Example config (all keys optional; see experiments/config.hpp):
//   dps = 3
//   profile = gt3          # gt3 | gt4 | gt4-c
//   clients = 120
//   duration_minutes = 60
//   exchange_minutes = 3
#include <cstring>
#include <iostream>

#include "digruber/common/table.hpp"
#include "digruber/diperf/report.hpp"
#include "digruber/experiments/config.hpp"
#include "digruber/trace/export.hpp"

using namespace digruber;

int main(int argc, char** argv) {
  Config config;
  std::string query_trace_path;
  std::string trace_path;
  std::string trace_format = "chrome";

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--query-trace" && i + 1 < argc) {
      query_trace_path = argv[++i];
    } else if (arg == "--trace" && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (arg == "--trace-format" && i + 1 < argc) {
      trace_format = argv[++i];
      if (trace_format != "chrome" && trace_format != "jsonl") {
        std::cerr << "unknown trace format '" << trace_format
                  << "' (expected chrome or jsonl)\n";
        return 2;
      }
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: " << argv[0]
                << " [scenario.conf] [key=value ...] [--query-trace out.csv]"
                   " [--trace out.json] [--trace-format chrome|jsonl]\n";
      return 0;
    } else if (arg.find('=') != std::string::npos) {
      const std::size_t eq = arg.find('=');
      config.set(arg.substr(0, eq), arg.substr(eq + 1));
    } else {
      try {
        const Config file = Config::from_file(arg);
        for (const auto& [key, value] : file.entries()) {
          if (!config.has(key)) config.set(key, value);
        }
      } catch (const std::exception& e) {
        std::cerr << "error: " << e.what() << "\n";
        return 1;
      }
    }
  }

  const auto scenario = experiments::scenario_from_config(config);
  if (!scenario.ok()) {
    std::cerr << "config error: " << scenario.error() << "\n";
    return 1;
  }
  experiments::ScenarioConfig cfg = scenario.value();

  trace::Tracer tracer;
  if (!trace_path.empty()) cfg.tracer = &tracer;

  std::cerr << "running '" << cfg.name << "': " << cfg.n_dps << " x "
            << cfg.profile.name << " decision point(s), " << cfg.n_clients
            << " clients, " << cfg.duration.to_minutes() << " min...\n";
  experiments::ScenarioResult r;
  try {
    r = experiments::run_scenario(cfg);
  } catch (const std::exception& e) {
    std::cerr << "scenario failed: " << e.what() << "\n";
    return 1;
  }

  diperf::render_figure(std::cout, cfg.name, r.collector, cfg.duration.to_seconds());

  Table perf({"", "% of Req", "# of Req", "Response (s)", "QTime (s)", "Util",
              "Accuracy"});
  auto row = [&](const char* label, const metrics::MetricValues& v, bool acc) {
    perf.add_row({label, Table::pct(v.request_share), std::to_string(v.requests),
                  Table::num(v.response_s, 2), Table::num(v.qtime_s, 1),
                  Table::pct(v.utilization),
                  acc && v.requests ? Table::pct(v.accuracy) : "-"});
  };
  row("Handled by GRUBER", r.handled, true);
  row("NOT handled (fallback)", r.not_handled, false);
  row("All requests", r.all, true);
  perf.render(std::cout);

  diperf::render_latency_percentiles(std::cout, r.handled, r.not_handled, r.all);

  // Queue-full drops and deadline sheds surface as typed overload
  // rejections rather than vanishing into the fallback population.
  if (r.overload.submitted > 0 &&
      (r.overload.shed_total() > 0 || r.overload.overload_nacks > 0 ||
       r.overload.aborted > 0)) {
    diperf::render_overload(std::cout, r.overload);
  }

  Table dps({"DP", "Queries", "Selections", "Exchanges out/in", "Records",
             "Sojourn (s)", "Container util"});
  for (std::size_t i = 0; i < r.dps.size(); ++i) {
    const experiments::DpStats& d = r.dps[i];
    dps.add_row({std::to_string(i), std::to_string(d.queries),
                 std::to_string(d.selections),
                 std::to_string(d.exchanges_sent) + "/" +
                     std::to_string(d.exchanges_received),
                 std::to_string(d.records_applied),
                 Table::num(d.mean_sojourn_s, 2),
                 Table::pct(d.container_utilization)});
  }
  dps.render(std::cout);

  std::cout << "grid: " << r.sites << " sites, " << r.total_cpus << " CPUs; "
            << r.jobs_completed << " jobs completed, "
            << Table::num(r.grid_cpu_seconds / 3600.0, 1) << " cpu-hours\n";
  if (r.final_dps != cfg.n_dps) {
    std::cout << (r.membership.joins_completed > 0
                      ? "membership joins grew the deployment to "
                      : "dynamic provisioning grew the deployment to ")
              << r.final_dps << " decision points\n";
  }
  if (cfg.overlay_options.kind != overlay::Kind::kMesh) {
    diperf::render_overlay(std::cout, overlay::kind_name(cfg.overlay_options.kind),
                           r.overlay);
    std::cout << "overlay: " << overlay::kind_name(cfg.overlay_options.kind)
              << ", mean fan-out " << Table::num(r.overlay.mean_fanout(), 2)
              << " over " << r.overlay.rounds << " round(s), max relay depth "
              << r.overlay.max_hops << ", " << r.overlay.relays_suppressed
              << " relay(s) suppressed, " << r.overlay.rebuilds
              << " rebuild(s)\n";
  }
  if (cfg.membership) {
    std::cout << "membership: " << r.membership.deaths_declared
              << " death(s) declared, " << r.membership.joins_completed << "/"
              << r.membership.joins_started << " join(s) completed, "
              << r.membership.leaves_observed << " leave notice(s), "
              << r.membership.client_dps_quarantined
              << " client quarantine(s)\n";
  }
  if (cfg.partition_tolerance || r.partition.frames_bad_checksum > 0) {
    std::cout << "partition: " << r.partition.digest_mismatches
              << " digest mismatch(es), " << r.partition.delta_pulls_sent
              << " delta pull(s) moving " << r.partition.delta_records_applied
              << " record(s), " << r.partition.double_commits
              << " double commit(s), " << r.partition.degraded_refusals
              << " degraded refusal(s), " << r.partition.frames_bad_checksum
              << "/" << r.partition.packets_corrupted
              << " corrupt frame(s) caught\n";
  }
  if (cfg.durability) {
    std::cout << "durability: " << r.durability.wal_appends
              << " WAL append(s) over " << r.durability.fsyncs
              << " fsync(s), " << r.durability.checkpoints_written
              << " checkpoint(s), " << r.durability.recoveries
              << " recover(ies) replaying " << r.durability.replay_records
              << " record(s), " << r.durability.dedup_hits
              << " retry collapse(s), " << r.durability.replay_mismatches
              << " replay mismatch(es), "
              << r.durability.torn_tails + r.durability.bit_flips
              << " disk fault(s) injected\n";
  }
  // Entitlement state is part of every summary: per-dispatch breaches over
  // the whole run plus the ground-truth audit snapshot at window end.
  std::cout << "usla: " << r.entitlement_breaches << " entitlement breach(es)";
  if (r.entitlement_breaches > 0) {
    std::cout << " (worst " << r.entitlement_worst_excess
              << " CPU(s) past a VO cap)";
  }
  std::cout << ", " << r.overcommits_final << " over-commit(s) at window end";
  if (r.overcommits_final > 0) {
    std::cout << " (worst " << r.overcommit_worst_excess << " CPU(s))";
  }
  std::cout << "\n";

  const bool economy_on =
      cfg.economy_options.allocator == economy::Allocator::kKarma ||
      cfg.market_placement || cfg.economy_options.enabled;
  if (!economy_on && cfg.workload.strategic_vo >= 0) {
    // Strategic-VO baseline run: show what the gate would have governed.
    std::cout << "economy: brokered VO fairness (Jain) "
              << Table::num(r.brokered_vo_fairness.jain, 3) << " (economy off)\n";
  }
  if (economy_on) {
    diperf::render_economy(std::cout, r.economy);
    std::cout << "economy: brokered VO fairness (Jain) "
              << Table::num(r.brokered_vo_fairness.jain, 3) << ", "
              << r.economy.credit_denials << " credit denial(s), "
              << r.economy.grace_admissions << " grace admission(s), "
              << r.economy.priced_dispatches << " priced dispatch(es)\n";
  }

  if (!query_trace_path.empty()) {
    r.trace.save(query_trace_path);
    std::cout << "query trace (" << r.trace.size() << " queries) -> "
              << query_trace_path << "\n";
  }
  if (!trace_path.empty()) {
    const std::string error =
        trace::write_trace_file(trace_path, trace_format, tracer);
    if (!error.empty()) {
      std::cerr << "trace export failed: " << error << "\n";
      return 1;
    }
    std::cout << "event trace (" << tracer.total_recorded() << " events, "
              << tracer.total_dropped() << " dropped) -> " << trace_path
              << " [" << trace_format << "]\n";
  }
  return 0;
}
