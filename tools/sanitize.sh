#!/usr/bin/env bash
# Build the whole tree under ASan+UBSan and run the test suite.
# Usage: tools/sanitize.sh [extra ctest args...]
set -euo pipefail
cd "$(dirname "$0")/.."

cmake --preset asan-ubsan
cmake --build --preset asan-ubsan -j "$(nproc)"
ctest --preset asan-ubsan "$@"
