// trace-inspect: summarize a JSONL event trace produced by `digruber-run
// --trace out.jsonl --trace-format jsonl` (or any bench's --trace flag).
//
//   trace-inspect trace.jsonl [--cat NAME] [--actor N] [--name NAME]
//                 [--trace-id N] [--from S] [--to S] [--recovery]
//                 [--overlay] [--events] [--top N]
//
// Prints per-span-name duration histograms (count, p50/p90/p99/max from
// the same HDR-style log-bucketed histogram the metrics layer uses),
// instant/counter tallies, and — with --events — the matching event lines
// themselves. Filters compose (AND). `--recovery` is a preset name filter
// keeping only the durability/recovery lifecycle: WAL appends and fsync
// barriers, checkpoints, replay spans, restarts, catch-up and delta
// anti-entropy, dedup hits and client report retries. `--overlay` keeps
// the dissemination lifecycle: exchange spans, structure rebuilds, TTL
// relay drops, grave probes, and digest-driven delta pulls.
#include <algorithm>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "digruber/common/table.hpp"
#include "digruber/trace/histogram.hpp"

using namespace digruber;

namespace {

/// One parsed JSONL record. Field set mirrors trace::write_jsonl.
struct Line {
  std::uint64_t seq = 0;
  std::string kind;  // B | E | I | C
  std::string cat;
  std::uint64_t actor = 0;
  std::string name;
  std::uint64_t trace = 0;
  std::uint64_t span = 0;
  std::uint64_t parent = 0;
  std::int64_t ts_us = 0;
  std::int64_t a0 = 0;
  std::int64_t a1 = 0;
};

/// Minimal extractor for the flat one-level JSON objects write_jsonl
/// emits; not a general JSON parser.
bool find_raw(const std::string& line, const std::string& key, std::string& out) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return false;
  std::size_t i = at + needle.size();
  while (i < line.size() && line[i] == ' ') ++i;
  if (i >= line.size()) return false;
  if (line[i] == '"') {
    const std::size_t end = line.find('"', i + 1);
    if (end == std::string::npos) return false;
    out = line.substr(i + 1, end - i - 1);
    return true;
  }
  std::size_t end = i;
  while (end < line.size() && line[end] != ',' && line[end] != '}') ++end;
  out = line.substr(i, end - i);
  return true;
}

std::uint64_t find_u64(const std::string& line, const std::string& key) {
  std::string raw;
  return find_raw(line, key, raw) ? std::strtoull(raw.c_str(), nullptr, 10) : 0;
}

std::int64_t find_i64(const std::string& line, const std::string& key) {
  std::string raw;
  return find_raw(line, key, raw) ? std::strtoll(raw.c_str(), nullptr, 10) : 0;
}

bool parse_line(const std::string& text, Line& out) {
  if (text.empty() || text[0] != '{') return false;
  if (!find_raw(text, "kind", out.kind)) return false;
  if (!find_raw(text, "cat", out.cat)) return false;
  if (!find_raw(text, "name", out.name)) return false;
  out.seq = find_u64(text, "seq");
  out.actor = find_u64(text, "actor");
  out.trace = find_u64(text, "trace");
  out.span = find_u64(text, "span");
  out.parent = find_u64(text, "parent");
  out.ts_us = find_i64(text, "ts_us");
  out.a0 = find_i64(text, "a0");
  out.a1 = find_i64(text, "a1");
  return true;
}

struct Options {
  std::string path;
  std::optional<std::string> cat;
  std::optional<std::uint64_t> actor;
  std::optional<std::string> name;
  std::optional<std::uint64_t> trace_id;
  std::optional<double> from_s;
  std::optional<double> to_s;
  bool recovery = false;
  bool overlay = false;
  bool events = false;
  std::size_t top = 20;
};

/// The durability/recovery lifecycle, end to end: device traffic, replay,
/// the gap-filling anti-entropy that follows it, and the exactly-once
/// machinery on both sides of the wire.
constexpr const char* kRecoveryNames[] = {
    "wal.append",        "wal.fsync",     "dp.checkpoint",
    "dp.recover.replay", "dp.restart",    "dp.catchup",
    "dp.catchup_applied", "dp.delta_pull", "dp.delta_served",
    "dp.dedup_hit",      "report.retry",
};

/// The dissemination-overlay lifecycle: every exchange push, the
/// structure repairs under churn, TTL relay suppressions, grave probes
/// to believed-dead peers, and the anti-entropy that backfills what a
/// sparse topology dropped mid-path.
constexpr const char* kOverlayNames[] = {
    "dp.exchange",       "overlay.rebuild", "overlay.relay_drop",
    "overlay.grave_probe", "dp.digest_mismatch", "dp.delta_pull",
    "dp.delta_served",
};

bool name_in(const std::string& name, std::span<const char* const> set) {
  for (const char* candidate : set) {
    if (name == candidate) return true;
  }
  return false;
}

bool recovery_name(const std::string& name) {
  return name_in(name, kRecoveryNames);
}

bool overlay_name(const std::string& name) {
  return name_in(name, kOverlayNames);
}

int usage(const char* argv0, int code) {
  (code ? std::cerr : std::cout)
      << "usage: " << argv0
      << " trace.jsonl [--cat NAME] [--actor N] [--name NAME] [--trace-id N]"
         " [--from S] [--to S] [--recovery] [--overlay] [--events]"
         " [--top N]\n";
  return code;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--help" || arg == "-h") return usage(argv[0], 0);
    if (arg == "--cat") {
      const char* v = next();
      if (!v) return usage(argv[0], 2);
      opt.cat = v;
    } else if (arg == "--actor") {
      const char* v = next();
      if (!v) return usage(argv[0], 2);
      opt.actor = std::strtoull(v, nullptr, 10);
    } else if (arg == "--name") {
      const char* v = next();
      if (!v) return usage(argv[0], 2);
      opt.name = v;
    } else if (arg == "--trace-id") {
      const char* v = next();
      if (!v) return usage(argv[0], 2);
      opt.trace_id = std::strtoull(v, nullptr, 10);
    } else if (arg == "--from") {
      const char* v = next();
      if (!v) return usage(argv[0], 2);
      opt.from_s = std::strtod(v, nullptr);
    } else if (arg == "--to") {
      const char* v = next();
      if (!v) return usage(argv[0], 2);
      opt.to_s = std::strtod(v, nullptr);
    } else if (arg == "--recovery") {
      opt.recovery = true;
    } else if (arg == "--overlay") {
      opt.overlay = true;
    } else if (arg == "--events") {
      opt.events = true;
    } else if (arg == "--top") {
      const char* v = next();
      if (!v) return usage(argv[0], 2);
      opt.top = std::size_t(std::strtoull(v, nullptr, 10));
    } else if (arg[0] != '-' && opt.path.empty()) {
      opt.path = arg;
    } else {
      return usage(argv[0], 2);
    }
  }
  if (opt.path.empty()) return usage(argv[0], 2);

  std::ifstream in(opt.path);
  if (!in) {
    std::cerr << "cannot open " << opt.path << "\n";
    return 1;
  }

  std::vector<Line> lines;
  std::string text;
  std::uint64_t skipped = 0;
  while (std::getline(in, text)) {
    Line line;
    if (!parse_line(text, line)) {
      if (!text.empty()) ++skipped;
      continue;
    }
    if (opt.cat && line.cat != *opt.cat) continue;
    if (opt.actor && line.actor != *opt.actor) continue;
    if (opt.name && line.name != *opt.name) continue;
    if (opt.recovery && !recovery_name(line.name)) continue;
    if (opt.overlay && !overlay_name(line.name)) continue;
    if (opt.trace_id && line.trace != *opt.trace_id) continue;
    const double ts_s = double(line.ts_us) * 1e-6;
    if (opt.from_s && ts_s < *opt.from_s) continue;
    if (opt.to_s && ts_s >= *opt.to_s) continue;
    lines.push_back(std::move(line));
  }
  if (skipped) std::cerr << "warning: " << skipped << " unparseable line(s)\n";
  if (lines.empty()) {
    std::cout << "no events match\n";
    return 0;
  }

  std::int64_t lo = lines.front().ts_us, hi = lines.front().ts_us;
  for (const Line& line : lines) {
    lo = std::min(lo, line.ts_us);
    hi = std::max(hi, line.ts_us);
  }
  std::cout << lines.size() << " events, sim-time "
            << Table::num(double(lo) * 1e-6, 1) << "s .. "
            << Table::num(double(hi) * 1e-6, 1) << "s\n\n";

  // Pair up spans within (span id); ends carry the same span id as their
  // begin. Orphans (ring-dropped halves) are counted, not guessed at.
  std::map<std::uint64_t, std::int64_t> open;  // span id -> begin ts
  std::map<std::string, trace::LogHistogram> durations;
  std::map<std::string, std::uint64_t> instants;
  std::map<std::string, std::uint64_t> counters;
  std::uint64_t orphan_ends = 0, unclosed = 0;
  for (const Line& line : lines) {
    if (line.kind == "B") {
      open[line.span] = line.ts_us;
    } else if (line.kind == "E") {
      const auto it = open.find(line.span);
      if (it == open.end()) {
        ++orphan_ends;
        continue;
      }
      auto [hist_it, _] = durations.try_emplace(line.name);
      hist_it->second.record(line.ts_us - it->second);
      open.erase(it);
    } else if (line.kind == "I") {
      ++instants[line.name];
    } else if (line.kind == "C") {
      ++counters[line.name];
    }
  }
  unclosed = open.size();

  if (!durations.empty()) {
    Table spans({"span", "count", "p50 (ms)", "p90 (ms)", "p99 (ms)", "max (ms)"});
    // Most-frequent first; --top bounds the listing.
    std::vector<const std::pair<const std::string, trace::LogHistogram>*> order;
    for (const auto& entry : durations) order.push_back(&entry);
    std::sort(order.begin(), order.end(), [](const auto* a, const auto* b) {
      if (a->second.count() != b->second.count())
        return a->second.count() > b->second.count();
      return a->first < b->first;
    });
    if (order.size() > opt.top) order.resize(opt.top);
    for (const auto* entry : order) {
      const trace::LogHistogram& h = entry->second;
      spans.add_row({entry->first, std::to_string(h.count()),
                     Table::num(double(h.p50()) * 1e-3, 2),
                     Table::num(double(h.p90()) * 1e-3, 2),
                     Table::num(double(h.p99()) * 1e-3, 2),
                     Table::num(double(h.max()) * 1e-3, 2)});
    }
    spans.render(std::cout);
    if (orphan_ends || unclosed) {
      std::cout << "(" << orphan_ends << " end(s) without a begin, " << unclosed
                << " begin(s) without an end — ring wrap or still-open "
                   "spans)\n";
    }
    std::cout << "\n";
  }

  auto render_tally = [&](const char* title,
                          const std::map<std::string, std::uint64_t>& tally) {
    if (tally.empty()) return;
    Table table({title, "count"});
    std::vector<std::pair<std::string, std::uint64_t>> order(tally.begin(),
                                                             tally.end());
    std::sort(order.begin(), order.end(), [](const auto& a, const auto& b) {
      if (a.second != b.second) return a.second > b.second;
      return a.first < b.first;
    });
    if (order.size() > opt.top) order.resize(opt.top);
    for (const auto& [name, count] : order) {
      table.add_row({name, std::to_string(count)});
    }
    table.render(std::cout);
    std::cout << "\n";
  };
  render_tally("instant", instants);
  render_tally("counter", counters);

  if (opt.events) {
    for (const Line& line : lines) {
      std::cout << Table::num(double(line.ts_us) * 1e-6, 6) << "s " << line.kind
                << " " << line.cat << "/" << line.actor << " " << line.name
                << " trace=" << line.trace << " span=" << line.span
                << " a0=" << line.a0 << " a1=" << line.a1 << "\n";
    }
  }
  return 0;
}
